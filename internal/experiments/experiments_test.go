package experiments

import (
	"strings"
	"testing"
)

func TestFig9SmallScale(t *testing.T) {
	res, err := Fig9(Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.PurePigUs <= 0 || len(res.Rows) != 3 {
		t.Fatalf("result = %+v", res)
	}
	for _, row := range res.Rows {
		if row.SingleUs < res.PurePigUs {
			t.Errorf("%s: single %d below pure %d", row.Label, row.SingleUs, res.PurePigUs)
		}
		if row.BFTUs < row.SingleUs {
			t.Errorf("%s: bft %d below single %d", row.Label, row.BFTUs, row.SingleUs)
		}
		// The paper's headline: modest overhead.
		if float64(row.BFTUs) > 2.0*float64(res.PurePigUs) {
			t.Errorf("%s: bft overhead ratio %.2f too high", row.Label,
				float64(row.BFTUs)/float64(res.PurePigUs))
		}
	}
	// More points cost at least as much digesting (single execution).
	if res.Rows[2].SingleUs < res.Rows[0].SingleUs {
		t.Errorf("3 points (%d) cheaper than 1 point (%d)", res.Rows[2].SingleUs, res.Rows[0].SingleUs)
	}
	out := res.Render()
	if !strings.Contains(out, "Pure Pig") || !strings.Contains(out, "3 points") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig10SmallScale(t *testing.T) {
	res, err := Fig10(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byLabel := map[string]OverheadRow{}
	for _, r := range res.Rows {
		byLabel[r.Label] = r
	}
	// The join's output dwarfs filter/project inputs, so digesting at the
	// join costs the most among single-point configs.
	if byLabel["Join"].SingleUs < byLabel["Filter"].SingleUs {
		t.Errorf("join digest (%d) should cost at least filter digest (%d)",
			byLabel["Join"].SingleUs, byLabel["Filter"].SingleUs)
	}
	// The all-points config is the most expensive.
	if byLabel["J,P&F"].SingleUs < byLabel["Join"].SingleUs {
		t.Errorf("all points (%d) cheaper than join only (%d)",
			byLabel["J,P&F"].SingleUs, byLabel["Join"].SingleUs)
	}
	if !strings.Contains(res.Render(), "J,P&F") {
		t.Error("render missing row")
	}
}

func TestTable3SmallScale(t *testing.T) {
	res, err := Table3(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Baseline
	if base.LatencyUs <= 0 {
		t.Fatal("baseline missing")
	}
	for _, row := range res.Rows {
		if !row.C.Verified || !row.P.Verified {
			t.Errorf("%s: unverified C=%v P=%v", row.Label, row.C.Verified, row.P.Verified)
		}
		// Replication multiplies resource usage.
		if row.C.Metrics.CPUTimeUs <= base.Metrics.CPUTimeUs {
			t.Errorf("%s: C CPU not above baseline", row.Label)
		}
		if row.P.Metrics.HDFSBytesWritten <= base.Metrics.HDFSBytesWritten {
			t.Errorf("%s: P HDFS writes not above baseline", row.Label)
		}
	}
	// r=4 tolerates the fault without re-initiation; r=2 cannot.
	r2, r4 := res.Rows[0], res.Rows[3]
	if r2.C.Attempts <= r4.C.Attempts {
		t.Errorf("r=2 attempts (%d) should exceed r=4 attempts (%d)", r2.C.Attempts, r4.C.Attempts)
	}
	out := res.Render()
	for _, want := range []string{"Latency", "CPU time", "HDFS write", "r=3c2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig11SmallScale(t *testing.T) {
	sc := Small()
	sc.Trials = 2
	res := Fig11(sc)
	if len(res.Points) != 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Higher probability isolates in fewer (or equal) jobs: compare the
	// endpoints for the main series.
	lo := res.Points[0].Jobs["r1,f=1"]
	hi := res.Points[9].Jobs["r1,f=1"]
	if hi > lo {
		t.Errorf("p=1.0 needs %.1f jobs, p=0.1 needs %.1f; expected monotone-ish decrease", hi, lo)
	}
	if !strings.Contains(res.Render(), "p(commission)") {
		t.Error("render header missing")
	}
}

func TestFig12SmallScale(t *testing.T) {
	res := Fig12(Small())
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	if res.TimeAtSaturation < 0 {
		t.Error("run never saturated")
	}
	last := res.Samples[len(res.Samples)-1]
	if last.High == 0 {
		t.Error("no High-suspicion node at end")
	}
	if !strings.Contains(res.Render(), "Fig 12") {
		t.Error("render name missing")
	}
}

func TestFig13SmallScale(t *testing.T) {
	res := Fig13(Small())
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	// Large-job mix: the peak suspect population is large (a sizeable
	// fraction of the 250-node cluster), demonstrating the spike.
	peak := 0
	for _, s := range res.Samples {
		if s.Suspects > peak {
			peak = s.Suspects
		}
	}
	if peak < 20 {
		t.Errorf("peak suspects = %d; expected a spike with large jobs", peak)
	}
}

func TestFig14SmallScale(t *testing.T) {
	sc := Small()
	res, err := Fig14(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Full.TotalUs() <= 0 {
			t.Fatalf("f=%d d=%d: empty cell", row.F, row.D)
		}
		// Individual digests at least as much as ClusterBFT, which
		// digests at least as much as Full.
		if row.Indiv.Reports < row.Cluster.Reports || row.Cluster.Reports < row.Full.Reports {
			t.Errorf("f=%d d=%d: report ordering %d/%d/%d", row.F, row.D,
				row.Full.Reports, row.Cluster.Reports, row.Indiv.Reports)
		}
	}
	// Smaller d => more digests => more control-tier work (compare d=10k
	// and d=100 at f=1 for the Individual system).
	var d10k, d100 Fig14Row
	for _, row := range res.Rows {
		if row.F == 1 && row.D == 10_000 {
			d10k = row
		}
		if row.F == 1 && row.D == 100 {
			d100 = row
		}
	}
	if d100.Indiv.ControlUs <= d10k.Indiv.ControlUs {
		t.Errorf("d=100 control time %d should exceed d=10k %d",
			d100.Indiv.ControlUs, d10k.Indiv.ControlUs)
	}
	if !strings.Contains(res.Render(), "clusterbft(s)") {
		t.Error("render header missing")
	}
}

func TestControlTierTime(t *testing.T) {
	zero, err := controlTierTime(1, 0, 20)
	if err != nil || zero != 0 {
		t.Errorf("no reports should cost nothing: %d, %v", zero, err)
	}
	small, err := controlTierTime(1, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	big, err := controlTierTime(1, 400, 20)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Errorf("10x reports should cost more: %d vs %d", big, small)
	}
	f3, err := controlTierTime(3, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	if f3 < small {
		t.Errorf("f=3 ordering (%d) should cost at least f=1 (%d)", f3, small)
	}
}

func TestScalePresets(t *testing.T) {
	s, p := Small(), Paper()
	if s.TwitterEdges >= p.TwitterEdges || s.Nodes > p.Nodes {
		t.Error("Small should be smaller than Paper")
	}
	if p.Nodes != 32 {
		t.Errorf("paper untrusted tier = %d nodes, want 32", p.Nodes)
	}
}

func TestTableRenderer(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "a  ") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestHelpers(t *testing.T) {
	if ratio(30, 10) != "3.00x" || ratio(5, 0) != "   -" {
		t.Error("ratio rendering")
	}
	if overheadPct(110, 100) != "+10.0%" || overheadPct(1, 0) != "-" {
		t.Error("overhead rendering")
	}
	if dLabel(10000) != "10k" || dLabel(100) != "100" {
		t.Error("dLabel")
	}
}

func TestRecoveryTable(t *testing.T) {
	res, err := Recovery()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RecoveryRow{}
	var clean int64
	for _, row := range res.Rows {
		byName[row.Scenario] = row
		if row.Violations > 0 {
			t.Errorf("%s: %d invariant violations", row.Scenario, row.Violations)
		}
		if row.Scenario == "clean" {
			clean = row.LatencyUs
		}
	}
	// Single-victim faults are masked by f+1-of-R verification: no added
	// latency over the clean run.
	for _, name := range []string{"crash+rejoin", "hang p=0.6", "commission p=0.9"} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("missing scenario %q", name)
		}
		if !row.Verified {
			t.Errorf("%s: not verified", name)
		}
		// Placement may shift by a heartbeat or two; within 1% of the
		// clean run counts as masked.
		if diff := row.LatencyUs - clean; diff > clean/100 || diff < -clean/100 {
			t.Errorf("%s: latency %d vs clean %d; single victims should be masked", name, row.LatencyUs, clean)
		}
	}
	// Hanging half the cluster exceeds the replication margin: the run
	// must pay retries and measurable latency, yet still verify.
	hang3 := byName["hang 3 nodes p=0.9"]
	if !hang3.Verified || hang3.Recoveries["retry"] == 0 || hang3.LatencyUs <= clean {
		t.Errorf("hang 3 nodes: verified=%v retries=%d latency=%d (clean %d)",
			hang3.Verified, hang3.Recoveries["retry"], hang3.LatencyUs, clean)
	}
	// Checkpoint-granular recovery plus straggler re-launch must cut the
	// worst omission scenario's latency multiple to at most 2.5x the
	// clean run (it was 5.63x with whole-sub-graph re-execution).
	if !hang3.CkptVerified || hang3.CkptViolations > 0 {
		t.Errorf("hang 3 nodes (ckpt): verified=%v violations=%d", hang3.CkptVerified, hang3.CkptViolations)
	}
	if 2*hang3.CkptLatencyUs > 5*clean {
		t.Errorf("hang 3 nodes (ckpt): latency %dus exceeds 2.5x clean (%dus)", hang3.CkptLatencyUs, clean)
	}
	if hang3.CkptLatencyUs >= hang3.LatencyUs {
		t.Errorf("hang 3 nodes: checkpointed path no faster: %d vs %d us", hang3.CkptLatencyUs, hang3.LatencyUs)
	}
	// The timed crash window is the checkpoint-consumption scenario: the
	// retry after the crash must skip the persisted interior job.
	crash5 := byName["crash 5 nodes 60s"]
	if !crash5.Verified || !crash5.CkptVerified || crash5.CkptViolations > 0 {
		t.Errorf("crash 5 nodes: base verified=%v ckpt verified=%v violations=%d",
			crash5.Verified, crash5.CkptVerified, crash5.CkptViolations)
	}
	if crash5.CkptSaves == 0 || crash5.CkptHits == 0 {
		t.Errorf("crash 5 nodes: saves=%d hits=%d, want both > 0", crash5.CkptSaves, crash5.CkptHits)
	}
	if crash5.CkptLatencyUs > crash5.LatencyUs {
		t.Errorf("crash 5 nodes: checkpointed recovery slower: %d vs %d us", crash5.CkptLatencyUs, crash5.LatencyUs)
	}
	if !strings.Contains(res.Render(), "saves/hits") {
		t.Error("render header missing")
	}
}

func TestVerifyCostSmallScale(t *testing.T) {
	res, err := VerifyCost(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	byPolicy := map[string]VerifyCostRow{}
	for _, r := range res.Rows {
		byPolicy[r.Policy] = r
		if r.DetectUs <= 0 {
			t.Errorf("%s: detection latency not measured: %d", r.Policy, r.DetectUs)
		}
		if r.RecoverUs <= 0 {
			t.Errorf("%s: recovery latency not measured", r.Policy)
		}
	}
	full := byPolicy["full"]
	for _, p := range []string{"quiz", "deferred"} {
		row := byPolicy[p]
		// The acceptance bar: the cheap policies spend at least 2x less
		// compute than full replication on a fault-free run.
		if row.CPUUs*2 > full.CPUUs {
			t.Errorf("%s CPU %d not >= 2x cheaper than full %d", p, row.CPUUs, full.CPUUs)
		}
		if row.QuizTasks == 0 {
			t.Errorf("%s ran no quizzes", p)
		}
	}
	if full.QuizTasks != 0 {
		t.Errorf("full ran %d quizzes", full.QuizTasks)
	}
	out := res.Render()
	if !strings.Contains(out, "deferred") || !strings.Contains(out, "cpu/full") {
		t.Errorf("render:\n%s", out)
	}
}

func TestOutOfCoreSmallScale(t *testing.T) {
	// OutOfCore self-asserts the acceptance regime: something spilled,
	// the resident high-water mark stayed under the budget (read back
	// through the dfs obs gauges), and the spill run's outputs, digest
	// counts and engine metrics matched the all-resident run byte for
	// byte. Any violation surfaces as err.
	sc := Small()
	sc.Storage.SpillDir = t.TempDir()
	res, err := OutOfCore(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("storage modes not observationally identical")
	}
	if res.DatasetBytes < 4*res.BudgetBytes {
		t.Fatalf("dataset %d B under 4x the %d B budget; regime too easy", res.DatasetBytes, res.BudgetBytes)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	spill := res.Rows[1]
	if spill.BlocksSpill == 0 || spill.SpillBytes == 0 {
		t.Fatalf("spill row did not spill: %+v", spill)
	}
	if spill.MaxResident > res.BudgetBytes {
		t.Fatalf("resident high-water %d B over the %d B budget", spill.MaxResident, res.BudgetBytes)
	}
	if spill.CompressPct <= 0 || spill.CompressPct >= 100 {
		t.Errorf("compressed ratio %d%% not in (0,100); flate gained nothing", spill.CompressPct)
	}
	out := res.Render()
	if !strings.Contains(out, "spill+flate") || !strings.Contains(out, "identical: true") {
		t.Errorf("render:\n%s", out)
	}
}

func TestShardScaleSmallScale(t *testing.T) {
	res := ShardScale(Small())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Nodes < 250 {
		t.Fatalf("scaling study must run at 250+ nodes, got %d", res.Nodes)
	}
	if !res.MergeOK {
		t.Fatal("cross-shard merge diverged from the single-pipeline verdict state")
	}
	eight := res.Rows[3]
	if eight.Shards != 8 {
		t.Fatalf("last row is shards=%d, want 8", eight.Shards)
	}
	if eight.Speedup < 3 {
		t.Fatalf("critical-path speedup at 8 shards = %.2fx, want >= 3x", eight.Speedup)
	}
	if eight.Evidence == 0 || eight.Evicted == 0 {
		t.Fatalf("workload surfaced no Byzantine evidence: %+v", eight)
	}
	out := res.Render()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "merge identical at every shard count: true") {
		t.Errorf("render:\n%s", out)
	}
	if again := ShardScale(Small()).Render(); again != out {
		t.Error("shardscale table is not deterministic")
	}
}

func TestScaleShardsFlowIntoControllers(t *testing.T) {
	sc := Small()
	sc.Shards = 4
	res, err := Fig14(sc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Fig14(Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != base.Render() {
		t.Error("Fig 14 differs under the sharded control tier")
	}
}
