package core

import (
	"fmt"
	"sort"

	"clusterbft/internal/analyze"
	"clusterbft/internal/cluster"
)

// NodeSet is a set of worker nodes.
type NodeSet map[cluster.NodeID]bool

// NewNodeSet builds a set from node IDs.
func NewNodeSet(ids ...cluster.NodeID) NodeSet {
	s := make(NodeSet, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Clone copies the set.
func (s NodeSet) Clone() NodeSet {
	c := make(NodeSet, len(s))
	for n := range s {
		c[n] = true
	}
	return c
}

// Intersect returns s ∩ t.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	out := make(NodeSet)
	for n := range s {
		if t[n] {
			out[n] = true
		}
	}
	return out
}

// Intersects reports whether s ∩ t is non-empty.
func (s NodeSet) Intersects(t NodeSet) bool {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	for n := range small {
		if big[n] {
			return true
		}
	}
	return false
}

// SubsetOf reports s ⊆ t.
func (s NodeSet) SubsetOf(t NodeSet) bool {
	if len(s) > len(t) {
		return false
	}
	for n := range s {
		if !t[n] {
			return false
		}
	}
	return true
}

// Sorted returns the members in ID order.
func (s NodeSet) Sorted() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(s))
	for n := range s {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FaultAnalyzer implements the FAULT_ANALYZER function of Fig 7: it
// receives the node sets of job clusters that returned commission faults
// and maintains a family D of disjoint suspicious sets — each assumed to
// hold exactly one faulty node — plus a family O of overlapping sets used
// to shrink the members of D by intersection once |D| reaches f.
type FaultAnalyzer struct {
	f int
	d []NodeSet
	o []NodeSet
	// reports counts faulty sets analyzed, the x-axis of Fig 11.
	reports int

	// Audit, when set, receives one event per reasoning step (set added
	// to D, refinement, intersection with exonerated nodes, saturation,
	// conviction). Nil disables logging.
	Audit *analyze.AuditTrail

	saturatedLogged bool
	convicted       map[cluster.NodeID]bool
}

// NewFaultAnalyzer builds an analyzer expecting up to f simultaneous
// faulty nodes.
func NewFaultAnalyzer(f int) *FaultAnalyzer {
	return &FaultAnalyzer{f: f}
}

// Disjoint returns the current family D (shared sets; callers must not
// mutate).
func (fa *FaultAnalyzer) Disjoint() []NodeSet { return fa.d }

// Overlapping returns the current family O.
func (fa *FaultAnalyzer) Overlapping() []NodeSet { return fa.o }

// Reports returns how many faulty job clusters have been analyzed.
func (fa *FaultAnalyzer) Reports() int { return fa.reports }

// Saturated reports whether |D| has reached f — the point after which the
// suspect population stops growing (§6.3, Fig 11).
func (fa *FaultAnalyzer) Saturated() bool { return len(fa.d) >= fa.f }

// Suspects returns the union of D, the nodes currently under suspicion,
// sorted for determinism.
func (fa *FaultAnalyzer) Suspects() []cluster.NodeID {
	u := make(NodeSet)
	for _, x := range fa.d {
		for n := range x {
			u[n] = true
		}
	}
	return u.Sorted()
}

// Report analyzes the node set S of a job cluster that just returned a
// commission fault (Fig 7). Stage 1 grows/refines the disjoint family D;
// stage 2, active once |D| = f, intersects members of D with overlapping
// evidence that touches exactly one of them.
func (fa *FaultAnalyzer) Report(s NodeSet) {
	if len(s) == 0 {
		return
	}
	fa.reports++
	s = s.Clone()

	switch {
	case fa.disjointFromAllD(s):
		fa.d = append(fa.d, s) // lines 4-5
		fa.Audit.Add(analyze.AuditNewDisjoint, s.Sorted(),
			fmt.Sprintf("report #%d disjoint from D, |D|=%d", fa.reports, len(fa.d)))
		fa.noteSet(len(fa.d) - 1)
	case fa.strictSupersetInD(s) >= 0:
		// Lines 6-9: S refines a coarser suspicion set Y: Y moves to the
		// overlapping evidence, S replaces it.
		i := fa.strictSupersetInD(s)
		fa.Audit.AddRemoved(analyze.AuditRefine, s.Sorted(), diffSorted(fa.d[i], s),
			fmt.Sprintf("report #%d is a strict subset of D[%d]", fa.reports, i))
		fa.o = append(fa.o, fa.d[i])
		fa.d[i] = s
		fa.noteSet(i)
	default:
		fa.o = append(fa.o, s) // line 11
		fa.Audit.Add(analyze.AuditOverlap, s.Sorted(),
			fmt.Sprintf("report #%d overlaps D, kept as evidence, |O|=%d", fa.reports, len(fa.o)))
	}
	if !fa.saturatedLogged && fa.Saturated() {
		fa.saturatedLogged = true
		fa.Audit.Add(analyze.AuditSaturated, fa.Suspects(),
			fmt.Sprintf("|D| reached f=%d after %d reports", fa.f, fa.reports))
	}
	fa.refine()
}

// noteSet records a conviction when D[i] has narrowed to a single node.
func (fa *FaultAnalyzer) noteSet(i int) {
	if len(fa.d[i]) != 1 {
		return
	}
	var n cluster.NodeID
	for m := range fa.d[i] {
		n = m
	}
	if fa.convicted[n] {
		return
	}
	if fa.convicted == nil {
		fa.convicted = make(map[cluster.NodeID]bool)
	}
	fa.convicted[n] = true
	fa.Audit.Add(analyze.AuditConviction, []cluster.NodeID{n},
		fmt.Sprintf("D[%d] narrowed to a single node after %d reports", i, fa.reports))
}

// diffSorted returns the members of a not in b, sorted.
func diffSorted(a, b NodeSet) []cluster.NodeID {
	var out []cluster.NodeID
	for n := range a {
		if !b[n] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (fa *FaultAnalyzer) disjointFromAllD(s NodeSet) bool {
	for _, x := range fa.d {
		if s.Intersects(x) {
			return false
		}
	}
	return true
}

// strictSupersetInD returns the index of a D member strictly containing
// s, or -1.
func (fa *FaultAnalyzer) strictSupersetInD(s NodeSet) int {
	for i, y := range fa.d {
		if len(s) < len(y) && s.SubsetOf(y) {
			return i
		}
	}
	return -1
}

// refine is stage 2 (Fig 7 lines 12-23): once |D| = f, each overlapping
// evidence set that intersects exactly one member of D must contain that
// member's faulty node, so the member shrinks to the intersection.
func (fa *FaultAnalyzer) refine() {
	if len(fa.d) < fa.f {
		return
	}
	changed := true
	for changed {
		changed = false
		for _, y := range fa.o {
			hit := -1
			for i, x := range fa.d {
				if y.Intersects(x) {
					if hit >= 0 {
						hit = -2 // touches several members: no information
						break
					}
					hit = i
				}
			}
			if hit < 0 {
				continue
			}
			inter := fa.d[hit].Intersect(y)
			if len(inter) > 0 && len(inter) < len(fa.d[hit]) {
				fa.Audit.AddRemoved(analyze.AuditIntersect, inter.Sorted(), diffSorted(fa.d[hit], inter),
					fmt.Sprintf("D[%d] ∩ overlapping evidence %v", hit, y.Sorted()))
				fa.d[hit] = inter
				changed = true
				fa.noteSet(hit)
			}
		}
	}
}
