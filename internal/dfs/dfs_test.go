package dfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateAndExists(t *testing.T) {
	fs := New()
	if fs.Exists("a") {
		t.Fatal("fresh FS should be empty")
	}
	if err := fs.Create("a"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("a") {
		t.Error("created file should exist")
	}
	var exists *ErrExists
	if err := fs.Create("a"); !errors.As(err, &exists) {
		t.Errorf("second Create should fail with ErrExists, got %v", err)
	}
}

func TestPathCleaning(t *testing.T) {
	fs := New()
	fs.Append("/data/in/", "x")
	if !fs.Exists("data/in") {
		t.Error("leading/trailing slashes should normalize")
	}
	lines, err := fs.ReadLines("/data/in")
	if err != nil || len(lines) != 1 {
		t.Errorf("ReadLines via alternate spelling: %v %v", lines, err)
	}
}

func TestAppendAndRead(t *testing.T) {
	fs := New()
	fs.Append("f", "one", "two")
	fs.Append("f", "three")
	lines, err := fs.ReadLines("f")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three"}
	if len(lines) != 3 {
		t.Fatalf("len = %d", len(lines))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestReadReturnsCopy(t *testing.T) {
	fs := New()
	fs.Append("f", "orig")
	lines, _ := fs.ReadLines("f")
	lines[0] = "mutated"
	again, _ := fs.ReadLines("f")
	if again[0] != "orig" {
		t.Error("ReadLines must return a copy")
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	var nf *ErrNotFound
	if _, err := fs.ReadLines("ghost"); !errors.As(err, &nf) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
}

func TestDelete(t *testing.T) {
	fs := New()
	fs.Append("f", "x")
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("f") {
		t.Error("deleted file still exists")
	}
	if err := fs.Delete("f"); err == nil {
		t.Error("deleting missing file should error")
	}
}

func TestDeleteTree(t *testing.T) {
	fs := New()
	fs.Append("out/part-00000", "a")
	fs.Append("out/part-00001", "b")
	fs.Append("outlier", "c")
	if n := fs.DeleteTree("out"); n != 2 {
		t.Errorf("DeleteTree removed %d, want 2", n)
	}
	if !fs.Exists("outlier") {
		t.Error("DeleteTree must not remove sibling with shared name prefix")
	}
}

func TestListPrefixBoundary(t *testing.T) {
	fs := New()
	fs.Append("job/a", "1")
	fs.Append("job/b", "2")
	fs.Append("jobx", "3")
	got := fs.List("job")
	if len(got) != 2 || got[0] != "job/a" || got[1] != "job/b" {
		t.Errorf("List(job) = %v", got)
	}
	if n := len(fs.List("")); n != 3 {
		t.Errorf("List(\"\") found %d files", n)
	}
}

func TestSizeAccounting(t *testing.T) {
	fs := New()
	fs.Append("f", "abc", "de") // 4 + 3 bytes with newlines
	sz, err := fs.Size("f")
	if err != nil || sz != 7 {
		t.Errorf("Size = %d, %v; want 7", sz, err)
	}
	if _, err := fs.Size("missing"); err == nil {
		t.Error("Size of missing file should error")
	}
}

func TestTreeSize(t *testing.T) {
	fs := New()
	fs.Append("d/a", "xx") // 3
	fs.Append("d/b", "y")  // 2
	fs.Append("e", "zzzz") // 5
	if got := fs.TreeSize("d"); got != 5 {
		t.Errorf("TreeSize(d) = %d, want 5", got)
	}
	if got := fs.TreeSize(""); got != 10 {
		t.Errorf("TreeSize(\"\") = %d, want 10", got)
	}
}

func TestLineCount(t *testing.T) {
	fs := New()
	fs.Append("f", "a", "b", "c")
	n, err := fs.LineCount("f")
	if err != nil || n != 3 {
		t.Errorf("LineCount = %d, %v", n, err)
	}
	if _, err := fs.LineCount("nope"); err == nil {
		t.Error("LineCount of missing file should error")
	}
}

func TestReadTreeOrder(t *testing.T) {
	fs := New()
	fs.Append("out/part-00001", "second")
	fs.Append("out/part-00000", "first")
	lines, err := fs.ReadTree("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0] != "first" || lines[1] != "second" {
		t.Errorf("ReadTree = %v; want sorted part order", lines)
	}
}

func TestReadTreeMissing(t *testing.T) {
	fs := New()
	if _, err := fs.ReadTree("none"); err == nil {
		t.Error("ReadTree on empty prefix should error")
	}
}

func TestCounters(t *testing.T) {
	fs := New()
	fs.Append("f", "abcd") // 5 bytes
	if fs.BytesWritten() != 5 {
		t.Errorf("BytesWritten = %d", fs.BytesWritten())
	}
	fs.ReadLines("f")
	if fs.BytesRead() != 5 {
		t.Errorf("BytesRead = %d", fs.BytesRead())
	}
	fs.ResetCounters()
	if fs.BytesWritten() != 0 || fs.BytesRead() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
	if !fs.Exists("f") {
		t.Error("ResetCounters must not delete files")
	}
}

func TestConcurrentAppends(t *testing.T) {
	fs := New()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fs.Append(fmt.Sprintf("w%d", w), "line")
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		n, err := fs.LineCount(fmt.Sprintf("w%d", w))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != workers*per {
		t.Errorf("total lines = %d, want %d", total, workers*per)
	}
}

func TestSizeMatchesBytesWrittenProperty(t *testing.T) {
	f := func(lines []string) bool {
		fs := New()
		sanitized := make([]string, len(lines))
		copy(sanitized, lines)
		fs.Append("f", sanitized...)
		if len(sanitized) == 0 {
			return fs.BytesWritten() == 0
		}
		sz, err := fs.Size("f")
		return err == nil && sz == fs.BytesWritten()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWriteHookTransformsStoredLines checks the write-side injection
// hook: Append stores the hook's transformation, and byte accounting
// follows what was actually stored.
func TestWriteHookTransformsStoredLines(t *testing.T) {
	fs := New()
	fs.WriteHook = func(path string, lines []string) []string {
		if path != "x/out" || len(lines) == 0 {
			return lines
		}
		return lines[:len(lines)-1] // truncate the stream's tail
	}
	fs.Append("x/out", "a", "b", "c")
	fs.Append("plain", "a", "b", "c")
	got, err := fs.ReadLines("x/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("hooked file kept %d lines, want 2", len(got))
	}
	if n, _ := fs.LineCount("plain"); n != 3 {
		t.Errorf("unmatched path was transformed: %d lines", n)
	}
	if sz, _ := fs.Size("x/out"); sz != 4 {
		t.Errorf("size %d counts dropped lines", sz)
	}
}

// TestReadHookAppliesOncePerLogicalRead checks the read-side hook fires
// exactly once per ReadLines or ReadTree call — a tree read must not
// additionally filter each part file — and never touches stored data.
func TestReadHookAppliesOncePerLogicalRead(t *testing.T) {
	fs := New()
	fs.Append("d/part-0", "a")
	fs.Append("d/part-1", "b")
	calls := 0
	fs.ReadHook = func(path string, lines []string) []string {
		calls++
		return append(lines, "tampered:"+path)
	}
	tree, err := fs.ReadTree("d")
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("tree read fired the hook %d times, want 1", calls)
	}
	if len(tree) != 3 || tree[2] != "tampered:d" {
		t.Errorf("tree = %v, want 2 lines + tamper marker for the prefix", tree)
	}
	if _, err := fs.ReadLines("d/part-0"); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("flat read fired the hook %d more times, want 1", calls-1)
	}
	// Stored data is untouched: a hookless FS view of the same ops.
	fs.ReadHook = nil
	if n, _ := fs.LineCount("d/part-0"); n != 1 {
		t.Errorf("hook mutated stored data: %d lines", n)
	}
}
