package mapred

import (
	"fmt"

	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

// CompileOptions parameterize plan compilation.
type CompileOptions struct {
	// Points are the verification-point vertex IDs chosen by the graph
	// analyzer; a PhysDigest op is instrumented at each.
	Points []int
	// NumReduces is the reduce parallelism for parallel shuffle jobs
	// (global sorts and GROUP ALL always run one reduce task). The paper
	// requires all replicas of a job to use the same value (§4.1).
	NumReduces int
	// TempPrefix is the DFS directory receiving intermediate
	// (between-job) outputs. Defaults to "tmp".
	TempPrefix string
	// DisableCombine turns off map-side combining (the -combine=off
	// escape hatch). Combining is on by default: the compiler only marks
	// jobs where the combined result is byte-identical to the uncombined
	// one, so the switch exists for A/B measurement and defense in
	// depth, not correctness.
	DisableCombine bool
}

// Compile lowers a logical plan into a DAG of MapReduce jobs, mirroring
// how Pig compiles scripts for Hadoop (paper §2.2): map-side chains
// (LOAD/FILTER/FOREACH/UNION) run until a shuffle operator
// (GROUP/JOIN/ORDER/DISTINCT); the shuffle's consumers run reduce-side
// until the next shuffle or STORE, at which point output materializes to
// the DFS. Vertices with several consumers materialize once and are read
// by each consumer job. Verification points become PhysDigest operators
// at the corresponding position in the op chains.
func Compile(p *pig.Plan, opts CompileOptions) ([]*JobSpec, error) {
	if opts.NumReduces <= 0 {
		opts.NumReduces = 2
	}
	if opts.TempPrefix == "" {
		opts.TempPrefix = "tmp"
	}
	c := &compiler{
		opts:   opts,
		points: make(map[int]bool, len(opts.Points)),
		mat:    make(map[int]matInfo),
	}
	for _, pt := range opts.Points {
		c.points[pt] = true
	}
	for _, store := range p.Stores() {
		if err := c.compileStore(store); err != nil {
			return nil, err
		}
	}
	return c.jobs, nil
}

type matInfo struct {
	path  string
	jobID string
}

type compiler struct {
	opts   CompileOptions
	points map[int]bool
	mat    map[int]matInfo // vertex ID -> materialized location
	jobs   []*JobSpec
	nextID int
}

func (c *compiler) newJobID() string {
	id := fmt.Sprintf("j%02d", c.nextID)
	c.nextID++
	return id
}

// shared reports whether v's output has several consumers and therefore
// materializes once. LOAD reads are repeatable and GROUP output (bags)
// only exists inside its job, so neither is shared.
func shared(v *pig.Vertex) bool {
	return len(v.Children) > 1 && v.Kind != pig.OpLoad && v.Kind != pig.OpGroup
}

// reduceSide reports whether v executes on the reduce side of some job,
// i.e. a shuffle is reached walking up through exclusive map operators.
func reduceSide(v *pig.Vertex) bool {
	for {
		if v.Kind.IsShuffle() {
			return true
		}
		if v.Kind == pig.OpLoad || v.Kind == pig.OpUnion || len(v.Parents) != 1 {
			return false
		}
		v = v.Parents[0]
		if shared(v) {
			return false // materialization cut: below it is map side
		}
	}
}

// digestOps returns the digest op for v if it carries a verification
// point.
func (c *compiler) digestOps(v *pig.Vertex) []Op {
	if c.points[v.ID] {
		return []Op{{Kind: PhysDigest, Point: v.ID}}
	}
	return nil
}

func (c *compiler) compileStore(store *pig.Vertex) error {
	parent := store.Parents[0]
	if shared(parent) {
		// Materialize once, then publish with an identity job.
		mi, err := c.materialize(parent)
		if err != nil {
			return err
		}
		c.jobs = append(c.jobs, &JobSpec{
			ID:   c.newJobID(),
			Deps: []string{mi.jobID},
			Inputs: []JobInput{{
				Path:   mi.path,
				Schema: parent.Schema,
				Tag:    -1,
			}},
			NumReduces: 1,
			Output:     store.Path,
			OutVertex:  parent.ID,
			Final:      true,
		})
		return nil
	}
	_, err := c.buildJob(parent, store.Path, true)
	return err
}

// materialize ensures v's output exists at a temp location, building its
// job on first use.
func (c *compiler) materialize(v *pig.Vertex) (matInfo, error) {
	if mi, ok := c.mat[v.ID]; ok {
		return mi, nil
	}
	path := fmt.Sprintf("%s/v%02d", c.opts.TempPrefix, v.ID)
	jobID, err := c.buildJob(v, path, false)
	if err != nil {
		return matInfo{}, err
	}
	mi := matInfo{path: path, jobID: jobID}
	c.mat[v.ID] = mi
	return mi, nil
}

// buildJob constructs the job materializing v's output at outPath and
// returns its job ID. It walks up from v collecting the trailing operator
// chain until the governing shuffle (reduce-side job), a LOAD/UNION
// (map-only job) or a materialization cut (map-only job over a temp).
func (c *compiler) buildJob(v *pig.Vertex, outPath string, final bool) (string, error) {
	var chain []*pig.Vertex // source-exclusive, ordered source -> v
	cur := v
	for {
		if cur != v && shared(cur) {
			mi, err := c.materialize(cur)
			if err != nil {
				return "", err
			}
			in := JobInput{Path: mi.path, Schema: cur.Schema, Tag: -1}
			return c.emitChainJob([]JobInput{in}, []string{mi.jobID}, chain, v, outPath, final)
		}
		switch cur.Kind {
		case pig.OpLoad:
			in := JobInput{Path: cur.Path, Schema: cur.Schema, Tag: -1, Ops: c.digestOps(cur)}
			return c.emitChainJob([]JobInput{in}, nil, chain, v, outPath, final)
		case pig.OpUnion:
			inputs, deps, err := c.unionInputs(cur)
			if err != nil {
				return "", err
			}
			return c.emitChainJob(inputs, deps, chain, v, outPath, final)
		case pig.OpGroup, pig.OpJoin, pig.OpOrder, pig.OpDistinct:
			return c.emitShuffleJob(cur, chain, v, outPath, final)
		default:
			chain = append([]*pig.Vertex{cur}, chain...)
			cur = cur.Parents[0]
		}
	}
}

// unionInputs flattens a UNION into one JobInput per upstream branch,
// instrumenting the union's own verification point on every branch.
func (c *compiler) unionInputs(u *pig.Vertex) ([]JobInput, []string, error) {
	var inputs []JobInput
	var deps []string
	for _, parent := range u.Parents {
		ins, ds, err := c.inputsFor(parent)
		if err != nil {
			return nil, nil, err
		}
		inputs = append(inputs, ins...)
		deps = append(deps, ds...)
	}
	if dops := c.digestOps(u); dops != nil {
		for i := range inputs {
			inputs[i].Ops = append(inputs[i].Ops, dops...)
		}
	}
	return inputs, deps, nil
}

// inputsFor builds the map-side inputs delivering p's output stream.
func (c *compiler) inputsFor(p *pig.Vertex) ([]JobInput, []string, error) {
	switch {
	case p.Kind == pig.OpLoad:
		return []JobInput{{Path: p.Path, Schema: p.Schema, Tag: -1, Ops: c.digestOps(p)}}, nil, nil
	case p.Kind.IsShuffle() || shared(p) || reduceSide(p):
		mi, err := c.materialize(p)
		if err != nil {
			return nil, nil, err
		}
		return []JobInput{{Path: mi.path, Schema: p.Schema, Tag: -1}}, []string{mi.jobID}, nil
	case p.Kind == pig.OpUnion:
		return c.unionInputs(p)
	case len(p.Parents) == 1:
		inputs, deps, err := c.inputsFor(p.Parents[0])
		if err != nil {
			return nil, nil, err
		}
		op, err := mapOpOf(p)
		if err != nil {
			return nil, nil, err
		}
		for i := range inputs {
			inputs[i].Ops = append(inputs[i].Ops, op)
			inputs[i].Ops = append(inputs[i].Ops, c.digestOps(p)...)
		}
		return inputs, deps, nil
	default:
		return nil, nil, fmt.Errorf("mapred: cannot compile %v as a map-side operator", p)
	}
}

// mapOpOf lowers a map-side vertex to a physical op.
func mapOpOf(v *pig.Vertex) (Op, error) {
	switch v.Kind {
	case pig.OpFilter:
		return Op{Kind: PhysFilter, Pred: v.Pred}, nil
	case pig.OpForEach:
		return Op{Kind: PhysProject, Gens: v.Gens}, nil
	case pig.OpSample:
		return Op{Kind: PhysSample, Fraction: v.Fraction}, nil
	default:
		return Op{}, fmt.Errorf("mapred: %v is not a map-side operator", v)
	}
}

// emitChainJob finishes a non-shuffle walk: the chain ops apply map-side.
// A LIMIT anywhere in the chain forces a single-reduce pass-through job
// so the limit is global.
func (c *compiler) emitChainJob(inputs []JobInput, deps []string, chain []*pig.Vertex, out *pig.Vertex, outPath string, final bool) (string, error) {
	limitAt := -1
	for i, cv := range chain {
		if cv.Kind == pig.OpLimit {
			limitAt = i
			break
		}
	}
	job := &JobSpec{
		ID:         c.newJobID(),
		Deps:       deps,
		NumReduces: 1,
		Output:     outPath,
		OutVertex:  out.ID,
		Final:      final,
	}
	if limitAt < 0 {
		mapOps, err := c.lowerChain(chain)
		if err != nil {
			return "", err
		}
		for i := range inputs {
			inputs[i].Ops = append(inputs[i].Ops, mapOps...)
		}
		job.Inputs = inputs
		c.jobs = append(c.jobs, job)
		return job.ID, nil
	}
	// Split at the limit: pre-limit ops map-side, the rest reduce-side
	// behind a constant key and one reduce task.
	pre, err := c.lowerChain(chain[:limitAt])
	if err != nil {
		return "", err
	}
	post, err := c.lowerChain(chain[limitAt:])
	if err != nil {
		return "", err
	}
	for i := range inputs {
		inputs[i].Ops = append(inputs[i].Ops, pre...)
		inputs[i].KeyCols = []int{}
	}
	job.Inputs = inputs
	job.Reduce = &ReduceSpec{Kind: ReduceSort, PostOps: post}
	c.jobs = append(c.jobs, job)
	return job.ID, nil
}

// lowerChain lowers consecutive non-shuffle vertices to physical ops with
// their verification points.
func (c *compiler) lowerChain(chain []*pig.Vertex) ([]Op, error) {
	var ops []Op
	for _, v := range chain {
		switch v.Kind {
		case pig.OpFilter, pig.OpForEach, pig.OpSample:
			op, err := mapOpOf(v)
			if err != nil {
				return nil, err
			}
			ops = append(ops, op)
		case pig.OpLimit:
			ops = append(ops, Op{Kind: PhysLimit, Limit: v.LimitN})
		default:
			return nil, fmt.Errorf("mapred: unexpected %v in operator chain", v)
		}
		ops = append(ops, c.digestOps(v)...)
	}
	return ops, nil
}

// emitShuffleJob finishes a walk that reached shuffle vertex s: its
// parents feed the map side, the chain below it runs reduce-side.
func (c *compiler) emitShuffleJob(s *pig.Vertex, chain []*pig.Vertex, out *pig.Vertex, outPath string, final bool) (string, error) {
	job := &JobSpec{
		ID:         c.newJobID(),
		NumReduces: c.opts.NumReduces,
		Output:     outPath,
		OutVertex:  out.ID,
		Final:      final,
	}
	reduce := &ReduceSpec{}
	job.Reduce = reduce

	attach := func(parent *pig.Vertex, keyCols []int, tag int) error {
		inputs, deps, err := c.inputsFor(parent)
		if err != nil {
			return err
		}
		for i := range inputs {
			// A GROUP/shuffle vertex's own verification point digests
			// the pre-shuffle stream (the data flowing through the
			// operator), computed map-side per task.
			if s.Kind == pig.OpGroup {
				inputs[i].Ops = append(inputs[i].Ops, c.digestOps(s)...)
			}
			// Keep empty-but-non-nil: nil means "map-only", empty means
			// "constant shuffle key".
			kc := make([]int, len(keyCols))
			copy(kc, keyCols)
			inputs[i].KeyCols = kc
			inputs[i].Tag = tag
		}
		job.Inputs = append(job.Inputs, inputs...)
		job.Deps = append(job.Deps, deps...)
		return nil
	}

	switch s.Kind {
	case pig.OpGroup:
		reduce.Kind = ReduceAggregate
		if len(chain) == 0 || chain[0].Kind != pig.OpForEach {
			return "", fmt.Errorf("mapred: GROUP %q must be consumed by FOREACH", s.Alias)
		}
		fe := chain[0]
		reduce.Gens = fe.Gens
		reduce.Combine = !c.opts.DisableCombine && combinableGens(fe.Gens, s.Parents[0].Schema)
		keyCols := s.GroupCols
		if s.GroupAll {
			keyCols = []int{}
			job.NumReduces = 1
		}
		if err := attach(s.Parents[0], keyCols, -1); err != nil {
			return "", err
		}
		reduce.PostOps = append(reduce.PostOps, c.digestOps(fe)...)
		post, err := c.lowerChain(chain[1:])
		if err != nil {
			return "", err
		}
		reduce.PostOps = append(reduce.PostOps, post...)
	case pig.OpJoin:
		reduce.Kind = ReduceJoin
		for side, parent := range s.Parents {
			if err := attach(parent, s.JoinCols[side], side); err != nil {
				return "", err
			}
		}
		reduce.PostOps = append(reduce.PostOps, c.digestOps(s)...)
		post, err := c.lowerChain(chain)
		if err != nil {
			return "", err
		}
		reduce.PostOps = append(reduce.PostOps, post...)
	case pig.OpOrder:
		reduce.Kind = ReduceSort
		reduce.OrderBy = s.OrderBy
		job.NumReduces = 1
		if err := attach(s.Parents[0], []int{}, -1); err != nil {
			return "", err
		}
		reduce.PostOps = append(reduce.PostOps, c.digestOps(s)...)
		post, err := c.lowerChain(chain)
		if err != nil {
			return "", err
		}
		reduce.PostOps = append(reduce.PostOps, post...)
	case pig.OpDistinct:
		reduce.Kind = ReduceDistinct
		// DISTINCT always combines: dedup keyed on the canonical encoding
		// of the whole tuple keeps the first arrival, and merging
		// task-local firsts in map-task order preserves the global first.
		reduce.Combine = !c.opts.DisableCombine
		keyCols := make([]int, s.Schema.Len())
		for i := range keyCols {
			keyCols[i] = i
		}
		if err := attach(s.Parents[0], keyCols, -1); err != nil {
			return "", err
		}
		reduce.PostOps = append(reduce.PostOps, c.digestOps(s)...)
		post, err := c.lowerChain(chain)
		if err != nil {
			return "", err
		}
		reduce.PostOps = append(reduce.PostOps, post...)
	default:
		return "", fmt.Errorf("mapred: unsupported shuffle operator %v", s)
	}

	// LIMIT inside the reduce chain of a multi-reduce job would be
	// per-partition; force a single reduce task for global semantics.
	for _, op := range reduce.PostOps {
		if op.Kind == PhysLimit {
			job.NumReduces = 1
		}
	}
	c.jobs = append(c.jobs, job)
	return job.ID, nil
}

// combinableGens reports whether every aggregate generator of a grouped
// FOREACH decomposes into mergeable partial state (pig.Aggregate
// .Algebraic against the bag schema — the GROUP parent's output, which
// is exactly the post-chain tuple entering the shuffle). Key
// expressions are always fine: they only read the group key, which the
// combiner carries through unchanged.
func combinableGens(gens []pig.GenItem, bag *tuple.Schema) bool {
	for _, g := range gens {
		if g.Agg != nil && !g.Agg.Algebraic(bag) {
			return false
		}
	}
	return true
}
