package faultsim

import (
	"testing"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
)

func TestAllocationString(t *testing.T) {
	if AllocRotate.String() != "rotate" || AllocPack.String() != "pack" {
		t.Error("Allocation names")
	}
}

func TestProbesLaunchAndIsolate(t *testing.T) {
	cfg := Config{CommissionProb: 0.4, Seed: 8, MaxTime: 400, Probes: true}
	r := Run(cfg)
	if r.ProbesLaunched == 0 {
		t.Fatal("no probe jobs launched")
	}
	if !r.Isolated {
		t.Errorf("probed run did not isolate: suspects=%v true=%v", r.Suspects, r.TrueFaulty)
	}
}

func TestProbesSpeedUpExactIsolation(t *testing.T) {
	// Average time-to-exact-isolation over several seeds: probe jobs
	// should help (or at least not hurt) because they split suspect
	// sets deliberately instead of waiting for accidental overlap.
	avg := func(probes bool) float64 {
		total, isolated := 0, 0
		for seed := int64(0); seed < 6; seed++ {
			r := Run(Config{CommissionProb: 0.35, Seed: 100 + seed*13, MaxTime: 500, Probes: probes})
			if r.TimeToExactIsolation >= 0 {
				total += r.TimeToExactIsolation
				isolated++
			} else {
				total += 500
			}
		}
		if isolated == 0 {
			t.Fatal("no run isolated")
		}
		return float64(total) / 6
	}
	with := avg(true)
	without := avg(false)
	if with > without*1.25 {
		t.Errorf("probes slowed isolation: with=%.1f without=%.1f", with, without)
	}
}

func TestPackAllocationStillWorks(t *testing.T) {
	r := Run(Config{CommissionProb: 0.8, Seed: 5, MaxTime: 300, Allocation: AllocPack})
	if r.JobsCompleted == 0 {
		t.Fatal("pack allocation ran no jobs")
	}
	if r.FaultsObserved > 0 && r.JobsAtSaturation < 0 {
		t.Error("observed faults but never saturated")
	}
}

func TestOverlapAblationRotateVsPack(t *testing.T) {
	// The paper's §4.2 scheduling claim: overlapping job clusters makes
	// fault isolation faster. Compare exact-isolation times.
	avg := func(alloc Allocation) float64 {
		total := 0
		for seed := int64(0); seed < 6; seed++ {
			r := Run(Config{CommissionProb: 0.5, Seed: 300 + seed*17, MaxTime: 600, Allocation: alloc})
			if r.TimeToExactIsolation >= 0 {
				total += r.TimeToExactIsolation
			} else {
				total += 600
			}
		}
		return float64(total) / 6
	}
	rotate := avg(AllocRotate)
	pack := avg(AllocPack)
	if rotate > pack*1.25 {
		t.Errorf("overlap allocation slower than packing: rotate=%.1f pack=%.1f", rotate, pack)
	}
	t.Logf("exact isolation time: rotate=%.1f pack=%.1f ticks", rotate, pack)
}

func TestAllocateProbePlacesTargetsInReplicaZero(t *testing.T) {
	cfg := (Config{Nodes: 30, Slots: 3, CommissionProb: 0, Seed: 1}).withDefaults()
	free := make([]int, cfg.Nodes)
	for i := range free {
		free[i] = cfg.Slots
	}
	offset := 0
	targets := []int{7, 11}
	j, ok := allocateProbe(cfg, newRng(2), free, &offset, targets, map[int]bool{}, 0)
	if !ok {
		t.Fatal("probe allocation failed")
	}
	for _, n := range targets {
		if !j.replicas[0][nodeID(n)] {
			t.Errorf("target %d missing from replica 0", n)
		}
		for ri := 1; ri < len(j.replicas); ri++ {
			if j.replicas[ri][nodeID(n)] {
				t.Errorf("target %d leaked into replica %d", n, ri)
			}
		}
	}
	// Replicas are pairwise node-disjoint.
	seen := map[string]int{}
	for _, rep := range j.replicas {
		for n := range rep {
			seen[string(n)]++
		}
	}
	for n, k := range seen {
		if k > 1 {
			t.Errorf("node %s in %d replicas", n, k)
		}
	}
}

func TestAllocateProbeFailsCleanlyWithoutCapacity(t *testing.T) {
	cfg := (Config{Nodes: 4, Slots: 1, CommissionProb: 0, Seed: 1}).withDefaults()
	free := []int{1, 1, 1, 1}
	offset := 0
	// 4 replicas x >=3 slots cannot fit disjointly on 4 single-slot nodes.
	_, ok := allocateProbe(cfg, newRng(2), free, &offset, []int{0}, map[int]bool{}, 0)
	if ok {
		t.Fatal("probe allocation should fail")
	}
	for i, f := range free {
		if f != 1 {
			t.Errorf("free[%d] = %d after failed probe allocation", i, f)
		}
	}
}

func TestPickProbeTargetsHalvesFirstBigSet(t *testing.T) {
	// Build an analyzer with a known multi-node suspect set.
	fa := newAnalyzerWithSet(t, "a", "b", "c", "d")
	targets := pickProbeTargets(fa)
	if len(targets) != 2 {
		t.Fatalf("targets = %v, want half of 4", targets)
	}
	// Singleton sets produce no probes.
	fa2 := newAnalyzerWithSet(t, "z")
	if pickProbeTargets(fa2) != nil {
		t.Error("singleton suspect set should not be probed")
	}
}

func newAnalyzerWithSet(t *testing.T, names ...string) *core.FaultAnalyzer {
	t.Helper()
	fa := core.NewFaultAnalyzer(1)
	s := make(core.NodeSet)
	for _, n := range names {
		s[cluster.NodeID("node-0"+n)] = true
	}
	fa.Report(s)
	return fa
}
