package core

import (
	"testing"

	"clusterbft/internal/digest"
	"clusterbft/internal/mapred"
)

// TestCheckpointCleanRunSavesAndTearsDown: with checkpointing on, a
// fault-free run persists each interior job's verified output (one save
// per in-cluster dependency edge target), consumes none of them (no
// retries), produces byte-identical outputs to a checkpoint-off run,
// and leaves no registry entries or ckpt/ files behind at teardown.
func TestCheckpointCleanRunSavesAndTearsDown(t *testing.T) {
	run := func(checkpoint bool) (*harness, []string, CheckpointStats) {
		cfg := DefaultConfig()
		cfg.Checkpoint = checkpoint
		// One verification point at the STORE: both MR jobs share a
		// cluster, making the first an interior (checkpointable) job.
		cfg.ForcePointAliases = []string{"counts"}
		h := newHarness(t, 8, 2, cfg)
		res, err := h.ctrl.Run(weatherScript)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatal("clean run must verify")
		}
		return h, h.outputLines(t, res, "out/counts"), h.ctrl.CheckpointStats()
	}
	hOn, withCkpt, stats := run(true)
	_, without, offStats := run(false)
	if stats.Saves == 0 || stats.BytesWritten == 0 {
		t.Errorf("no interior job checkpointed: %+v", stats)
	}
	if stats.Hits != 0 || stats.BytesReclaimed != 0 {
		t.Errorf("clean run consumed a checkpoint: %+v", stats)
	}
	if offStats != (CheckpointStats{}) {
		t.Errorf("checkpoint-off run touched the registry: %+v", offStats)
	}
	if len(withCkpt) != len(without) {
		t.Fatalf("output sizes differ: %d vs %d", len(withCkpt), len(without))
	}
	for i := range without {
		if withCkpt[i] != without[i] {
			t.Fatalf("line %d differs: %q vs %q", i, withCkpt[i], without[i])
		}
	}
	// Teardown dropped every entry and deleted the persisted files.
	for cid, reg := range hOn.ctrl.ckpts {
		t.Errorf("cluster %d retains %d checkpoint entries after teardown", cid, len(reg))
	}
}

// TestCheckpointSourceSignature: a checkpoint is only valid for an
// attempt consuming exactly the upstream (sid, replica) pairs recorded
// at save time. A re-verified upstream (same sid, different winner), a
// restarted upstream (new sid), or a changed upstream set all
// invalidate it.
func TestCheckpointSourceSignature(t *testing.T) {
	c := &Controller{
		Cfg:       Config{Checkpoint: true},
		ckpts:     map[int]map[string]*ckptEntry{},
		templates: map[string]*mapred.JobSpec{"j01": {ID: "j01"}},
	}
	cs := &clusterState{
		id:       2,
		policy:   PolicyFull,
		hasInDep: map[string]bool{"j01": true},
		sources: map[int]sourceRef{
			0: {sid: "run1-c0-a0", replica: 1},
			1: {sid: "run1-c1-a1", replica: 0},
		},
	}
	entry := func() *ckptEntry {
		return &ckptEntry{
			sum:  digest.Sum{1},
			path: "ckpt/run1/c2/j01",
			srcs: map[int]ckptSrc{
				0: {sid: "run1-c0-a0", replica: 1},
				1: {sid: "run1-c1-a1", replica: 0},
			},
		}
	}

	c.ckpts[cs.id] = map[string]*ckptEntry{"j01": entry()}
	if c.ckptValid(cs, "j01") == nil {
		t.Fatal("exact source match rejected")
	}

	// Different winner replica of the same upstream attempt: the bytes
	// this attempt reads are another replica's output tree.
	e := entry()
	e.srcs[0] = ckptSrc{sid: "run1-c0-a0", replica: 2}
	c.ckpts[cs.id]["j01"] = e
	if c.ckptValid(cs, "j01") != nil {
		t.Error("winner-replica change accepted")
	}

	// Restarted upstream: new attempt sid.
	e = entry()
	e.srcs[1] = ckptSrc{sid: "run1-c1-a2", replica: 0}
	c.ckpts[cs.id]["j01"] = e
	if c.ckptValid(cs, "j01") != nil {
		t.Error("upstream sid change accepted")
	}

	// Upstream set shrank or grew between save and relaunch.
	e = entry()
	delete(e.srcs, 1)
	c.ckpts[cs.id]["j01"] = e
	if c.ckptValid(cs, "j01") != nil {
		t.Error("missing upstream accepted")
	}
	e = entry()
	e.srcs[3] = ckptSrc{sid: "run1-c3-a0", replica: 0}
	c.ckpts[cs.id]["j01"] = e
	if c.ckptValid(cs, "j01") != nil {
		t.Error("extra upstream accepted")
	}

	// No entry at all.
	delete(c.ckpts[cs.id], "j01")
	if c.ckptValid(cs, "j01") != nil {
		t.Error("missing entry accepted")
	}
}

// TestCheckpointEligibility: only interior (in-cluster-depended-upon),
// non-Final jobs of a full-r cluster are checkpoint-eligible, and only
// when checkpointing is configured on.
func TestCheckpointEligibility(t *testing.T) {
	c := &Controller{
		Cfg: Config{Checkpoint: true},
		templates: map[string]*mapred.JobSpec{
			"j00": {ID: "j00", Final: true},
			"j01": {ID: "j01"},
			"j02": {ID: "j02"},
		},
	}
	cs := &clusterState{
		id:       0,
		policy:   PolicyFull,
		hasInDep: map[string]bool{"j01": true, "j00": true},
	}
	if !c.ckptEligible(cs, "j01") {
		t.Error("interior non-final job should be eligible")
	}
	if c.ckptEligible(cs, "j02") {
		t.Error("boundary job (no in-cluster dependent) must not be eligible")
	}
	if c.ckptEligible(cs, "j00") {
		t.Error("final job must not be eligible even with an in-cluster dependent")
	}
	cs.policy = PolicyQuiz
	if c.ckptEligible(cs, "j01") {
		t.Error("quiz policy (r=1) can never reach f+1 agreement; must not be eligible")
	}
	cs.policy = PolicyFull
	c.Cfg.Checkpoint = false
	if c.ckptEligible(cs, "j01") {
		t.Error("checkpointing off must disable eligibility")
	}
}
