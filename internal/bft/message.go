// Package bft implements Byzantine fault tolerant state machine
// replication for ClusterBFT's control tier (paper §6.4, where 3f+1
// request-handler replicas replace the implicitly trusted front end; the
// paper uses BFT-SMaRt, we implement the same PBFT-style three-phase
// protocol: pre-prepare, prepare, commit, with client reply matching and
// view changes). The transport is a deterministic virtual-time in-memory
// network so protocol runs are reproducible.
package bft

import (
	"crypto/sha256"
	"fmt"
)

// ID identifies a replica or client on the network.
type ID string

// ReplicaID formats the conventional replica name for index i.
func ReplicaID(i int) ID { return ID(fmt.Sprintf("replica-%d", i)) }

// GroupReplicaID formats replica i of a named group. The empty group
// yields the conventional un-namespaced name, so single-group setups
// are byte-identical to historical behavior. Namespaced IDs are the
// whole multi-group mechanism: the transport only knows a flat ID
// space, so disjoint names give each group an isolated protocol domain
// over one shared virtual-time network (the sharded control tier runs
// one group per verdict shard this way).
func GroupReplicaID(group string, i int) ID {
	if group == "" {
		return ReplicaID(i)
	}
	return ID(fmt.Sprintf("%s/replica-%d", group, i))
}

// Digest is a SHA-256 over a request's identity, binding the three
// protocol phases to one request.
type Digest [sha256.Size]byte

// Request is a client operation to order and execute.
type Request struct {
	Client ID
	Seq    uint64 // client-local timestamp; dedupes retransmissions
	Op     []byte
}

// Digest binds the request's identity.
func (r Request) Digest() Digest {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|", r.Client, r.Seq)
	h.Write(r.Op)
	var d Digest
	h.Sum(d[:0])
	return d
}

// key identifies a request for deduplication.
func (r Request) key() string { return fmt.Sprintf("%s|%d", r.Client, r.Seq) }

// PrePrepare is the primary's ordering proposal for a request.
type PrePrepare struct {
	View    uint64
	Seq     uint64 // global sequence number
	Digest  Digest
	Request Request
}

// Prepare is a backup's agreement to the proposal.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  Digest
	Replica ID
}

// Commit finalizes ordering once a prepare quorum exists.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  Digest
	Replica ID
}

// Reply carries one replica's execution result back to the client, which
// accepts a result once f+1 replicas agree on it.
type Reply struct {
	View    uint64
	ReqSeq  uint64 // the client's request timestamp
	Replica ID
	Result  []byte
}

// ViewChange votes to move to NewView after a primary timeout. Pending
// carries requests the sender saw but did not execute, so the new primary
// can re-propose them.
type ViewChange struct {
	NewView uint64
	Replica ID
	LastSeq uint64
	Pending []Request
}

// NewView installs a view; Reproposals are re-issued pre-prepares for
// requests surviving the view change.
type NewView struct {
	View        uint64
	Primary     ID
	Reproposals []PrePrepare
}

// Message is the union of protocol messages carried by the network.
type Message any
