// Twitter analysis: the paper's §6.1 verification-overhead study in
// miniature. Runs the follower-count and two-hop scripts as Pure Pig
// (no protection), Single Execution (digests, one replica) and BFT
// Execution (four replicas, f+1 digest matching), sweeping verification
// point placements, and prints the latency overhead of each.
//
//	go run ./examples/twitter
package main

import (
	"fmt"
	"log"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/workload"
)

const (
	edges = 60_000
	users = 2_000
	nodes = 32
)

func newEngine() (*dfs.FS, *mapred.Engine) {
	fs := dfs.New()
	fs.Append(workload.TwitterPath, workload.Twitter(edges, users, 7)...)
	return fs, mapred.NewEngine(fs, cluster.New(nodes, 3), nil, mapred.DefaultCostModel())
}

func assured(script string, cfg core.Config) *core.Result {
	_, eng := newEngine()
	susp := core.NewSuspicionTable(0)
	eng.Sched = core.NewOverlapScheduler(susp)
	res, err := core.NewController(eng, cfg, susp, nil).Run(script)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := core.Config{NumReduces: 2, TimeoutUs: 3_600_000_000, Offline: true, MaxAttempts: 4}

	fmt.Println("== Follower Analysis (Fig 8 i) ==")
	_, eng := newEngine()
	pure, err := core.RunPlain(eng, workload.FollowerScript)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.2fs\n", "Pure Pig", float64(pure)/1e6)
	for n := 1; n <= 3; n++ {
		single := base
		single.F, single.R, single.Points = 0, 1, n
		bft := base
		bft.F, bft.R, bft.Points = 1, 4, n
		s := assured(workload.FollowerScript, single)
		b := assured(workload.FollowerScript, bft)
		fmt.Printf("%-22s %8.2fs (+%4.1f%%)   BFT %8.2fs (+%4.1f%%)\n",
			fmt.Sprintf("Single, %d point(s)", n),
			float64(s.LatencyUs)/1e6, pct(s.LatencyUs, pure),
			float64(b.LatencyUs)/1e6, pct(b.LatencyUs, pure))
	}

	fmt.Println("\n== Two Hop Analysis (Fig 8 ii) ==")
	_, eng2 := newEngine()
	pure2, err := core.RunPlain(eng2, workload.TwoHopScript)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8.2fs\n", "Pure Pig", float64(pure2)/1e6)
	for _, cfg := range []struct {
		label  string
		points []string
	}{
		{"Join", []string{"hops"}},
		{"Filter", []string{"proper"}},
		{"J,P&F", []string{"hops", "pairs", "proper"}},
	} {
		bft := base
		bft.F, bft.R = 1, 4
		bft.ForcePointAliases = cfg.points
		b := assured(workload.TwoHopScript, bft)
		fmt.Printf("%-22s BFT %8.2fs (+%4.1f%%), %d digest reports\n",
			cfg.label, float64(b.LatencyUs)/1e6, pct(b.LatencyUs, pure2), b.DigestReports)
	}
}

func pct(v, base int64) float64 { return 100 * (float64(v)/float64(base) - 1) }
