package dfs

import "flag"

// Flags registers the block data-plane flags (-block-size, -mem-budget,
// -spill-dir, -compress) on fset — typically flag.CommandLine — and
// returns a function that resolves them into Options once the flag set
// has been parsed. Every CLI exposes the same four knobs through this
// helper.
func Flags(fset *flag.FlagSet) func() (Options, error) {
	blockSize := fset.Int("block-size", DefaultBlockSize,
		"target encoded size of one sealed DFS block, in bytes")
	memBudget := fset.String("mem-budget", "0",
		"resident block memory budget with optional k/m/g suffix; 0 keeps every block in memory")
	spillDir := fset.String("spill-dir", "",
		"directory for the block spill file (default: system temp dir)")
	compress := fset.Bool("compress", false,
		"flate-compress sealed DFS blocks")
	return func() (Options, error) {
		budget, err := ParseBytes(*memBudget)
		if err != nil {
			return Options{}, err
		}
		return Options{
			BlockSize: *blockSize,
			MemBudget: budget,
			SpillDir:  *spillDir,
			Compress:  *compress,
		}, nil
	}
}
