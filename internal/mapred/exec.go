package mapred

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"clusterbft/internal/digest"
	"clusterbft/internal/obs"
	"clusterbft/internal/pig"
	"clusterbft/internal/tuple"
)

// interRec is one shuffled record: its extracted key (canonical string
// for partitioning/grouping plus decoded values for key expressions), the
// join tag, and the payload tuple.
type interRec struct {
	keyStr string
	key    tuple.Tuple
	tag    int
	t      tuple.Tuple
	encLen int // len(EncodeLine(t)), fixed at record creation
}

// bytes estimates the serialized size of the record for local-I/O
// accounting (key + payload + framing).
func (r interRec) bytes() int64 {
	return int64(len(r.keyStr)) + int64(r.encLen) + 2
}

// digestFactory builds the digest writer for one verification point of
// the running task; nil disables digests.
type digestFactory func(point int) *digest.Writer

// opChain executes a physical operator chain over a tuple stream,
// feeding PhysDigest points into their writers.
type opChain struct {
	ops     []Op
	writers []*digest.Writer // parallel to ops; non-nil only for digests
	passed  []int64          // parallel to ops; PhysLimit counters
	digests int64            // records folded into digest writers
	scratch []byte           // reusable canonical-encode buffer (sampling)
}

func newOpChain(ops []Op, df digestFactory) *opChain {
	c := &opChain{
		ops:     ops,
		writers: make([]*digest.Writer, len(ops)),
		passed:  make([]int64, len(ops)),
	}
	if df != nil {
		for i, op := range ops {
			if op.Kind == PhysDigest {
				c.writers[i] = df(op.Point)
			}
		}
	}
	return c
}

// apply runs one tuple through the chain; ok is false when the tuple was
// dropped (filter miss or limit exhausted).
func (c *opChain) apply(t tuple.Tuple) (tuple.Tuple, bool) {
	for i, op := range c.ops {
		switch op.Kind {
		case PhysFilter:
			if !op.Pred.Eval(t).Truthy() {
				return nil, false
			}
		case PhysProject:
			out := make(tuple.Tuple, len(op.Gens))
			for g, gen := range op.Gens {
				out[g] = gen.Expr.Eval(t)
			}
			t = out
		case PhysDigest:
			if c.writers[i] != nil {
				c.writers[i].Add(t)
				c.digests++
			}
		case PhysLimit:
			if c.passed[i] >= op.Limit {
				return nil, false
			}
			c.passed[i]++
		case PhysSample:
			c.scratch = tuple.AppendCanonical(c.scratch[:0], t)
			if !sampleKeepHash(c.scratch, op.Fraction) {
				return nil, false
			}
		}
	}
	return t, true
}

// close finalizes all digest writers in the chain.
func (c *opChain) close() {
	for _, w := range c.writers {
		if w != nil {
			w.Close()
		}
	}
}

// sampleKeep deterministically selects a fraction of tuples by hashing
// their canonical bytes, so every replica samples the same subset and
// digests stay comparable (§5.4 determinism requirement). fraction is
// clamped to [0, 1]: it is client input, and converting a negative
// float to uint64 yields a platform-dependent value in Go (the spec
// leaves out-of-range float→integer conversions implementation-defined)
// rather than the "keep nothing" a negative fraction means.
func sampleKeep(t tuple.Tuple, fraction float64) bool {
	return sampleKeepHash(tuple.AppendCanonical(nil, t), fraction)
}

// FNV-1a parameters, inlined so the hot path hashes without the
// heap-allocated hash.Hash of hash/fnv. The loops below fold bytes
// exactly as fnv.New64a/New32a do (xor then multiply), so every hash
// value — and with it sampling subsets and shuffle placement — is
// unchanged.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// sampleKeepHash is sampleKeep over pre-encoded canonical bytes; callers
// on the per-record path reuse one scratch buffer for the encoding.
func sampleKeepHash(canon []byte, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	h := uint64(fnvOffset64)
	for _, b := range canon {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	const buckets = 1 << 20
	return h%buckets < uint64(fraction*buckets)
}

// partitionOf hash-partitions a shuffle key string (inline FNV-1a over
// the string bytes; no []byte copy).
func partitionOf(keyStr string, numReduces int) int {
	if numReduces <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(keyStr); i++ {
		h ^= uint32(keyStr[i])
		h *= fnvPrime32
	}
	return int(h % uint32(numReduces))
}

// extractKey projects the shuffle key out of a post-chain tuple,
// encoding the canonical key string through the caller's scratch buffer
// (returned possibly grown).
func extractKey(t tuple.Tuple, keyCols []int, scratch []byte) (string, tuple.Tuple, []byte) {
	key := make(tuple.Tuple, len(keyCols))
	for i, c := range keyCols {
		if c < len(t) {
			key[i] = t[c]
		} else {
			key[i] = tuple.Null()
		}
	}
	scratch = tuple.AppendEncoded(scratch[:0], key)
	return string(scratch), key, scratch
}

// taskObs carries optional observability counters into task bodies.
// The zero value disables everything: nil counters no-op, so honest hot
// paths pay a predictable nil check and zero allocations either way
// (pinned by the alloc tests).
type taskObs struct {
	mapRecords     *obs.Counter // records read by map tasks
	reduceRecords  *obs.Counter // records entering reduce tasks
	shuffleRecords *obs.Counter // records written into shuffle partitions
	combineRecords *obs.Counter // records folded into map-side combiners
	mergedRuns     *obs.Counter // sorted runs consumed by reduce merges
	outRecords     *obs.Counter // records emitted to task output
}

// mapOutcome carries the effects of one executed map task. For shuffle
// jobs each partition is a sorted run (sortRuns order); reduce attempts
// merge the runs read-only, so outcomes may be shared by backups.
type mapOutcome struct {
	partitions  [][]interRec // shuffle jobs: per-reduce-partition sorted runs
	outLines    []string     // map-only jobs: final output records
	recordsIn   int64
	recordsOut  int64 // records surviving the operator chain
	shuffleRecs int64 // records written into shuffle partitions
	combinedIn  int64 // records folded into the combiner (0 when off)
	digested    int64
	localBytes  int64 // shuffle bytes written
}

// corruptFn tampers tuples at the task source; nil for honest execution.
type corruptFn func(tuple.Tuple) tuple.Tuple

// runMapTask executes one map task over its split's raw lines.
func runMapTask(job *JobSpec, inputIdx int, lines []string, df digestFactory, corrupt corruptFn, o taskObs) *mapOutcome {
	in := &job.Inputs[inputIdx]
	chain := newOpChain(in.Ops, df)
	defer chain.close()
	out := &mapOutcome{}
	shuffle := in.KeyCols != nil
	var comb *combiner
	if shuffle && job.Reduce != nil && job.Reduce.Combine {
		comb = newCombiner(job.Reduce, in, job.NumReduces)
	} else if shuffle {
		out.partitions = make([][]interRec, job.NumReduces)
		per := len(lines)/job.NumReduces + 1
		for p := range out.partitions {
			out.partitions[p] = make([]interRec, 0, per)
		}
	}
	var scratch []byte    // per-task encode buffer, reused across records
	var dec tuple.Decoder // per-task decoder, amortizes unescape scratch
	for _, line := range lines {
		t := dec.DecodeLine(line, in.Schema)
		out.recordsIn++
		o.mapRecords.Inc()
		if corrupt != nil {
			t = corrupt(t)
		}
		t, ok := chain.apply(t)
		if !ok {
			continue
		}
		out.recordsOut++
		switch {
		case comb != nil:
			// Digests fired inside the chain above; combining only
			// reshapes what crosses the shuffle.
			scratch = comb.fold(t, in.KeyCols, scratch)
		case shuffle:
			var keyStr string
			var key tuple.Tuple
			keyStr, key, scratch = extractKey(t, in.KeyCols, scratch)
			rec := interRec{keyStr: keyStr, key: key, tag: in.Tag, t: t, encLen: tuple.EncodedLen(t)}
			p := partitionOf(keyStr, job.NumReduces)
			out.partitions[p] = append(out.partitions[p], rec)
			out.localBytes += rec.bytes()
		default:
			scratch = tuple.AppendEncoded(scratch[:0], t)
			out.outLines = append(out.outLines, string(scratch))
		}
	}
	out.digested = chain.digests
	if comb != nil {
		out.combinedIn = out.recordsOut
		out.partitions, out.localBytes = comb.emit()
		for _, p := range out.partitions {
			out.shuffleRecs += int64(len(p))
		}
	} else if shuffle {
		out.shuffleRecs = out.recordsOut
	}
	if shuffle {
		sortRuns(out.partitions, job.Reduce)
		o.shuffleRecords.Add(out.shuffleRecs)
		o.combineRecords.Add(out.combinedIn)
	} else {
		o.outRecords.Add(out.recordsOut)
	}
	return out
}

// reduceOutcome carries the effects of one executed reduce task.
type reduceOutcome struct {
	outLines   []string
	recordsIn  int64
	recordsOut int64
	digested   int64
}

// runReduceTask executes one reduce task over its partition's sorted
// runs, one per map task in map-ordinal order — the engine's stand-in
// for the paper's §5.4 "order intermediate output by mapper id"
// determinism fix. The k-way merge visits records in (key, map ordinal,
// in-task position) order, which is exactly the (key, global arrival)
// order the previous reduce-side global sort produced, so every kind
// streams its groups off the merge with no reduce-side sort and no
// buffering beyond the current group. Runs are never mutated: backup
// attempts of the same task merge the same shared runs concurrently.
func runReduceTask(spec *ReduceSpec, runs [][]interRec, df digestFactory, o taskObs) (*reduceOutcome, error) {
	chain := newOpChain(spec.PostOps, df)
	defer chain.close()
	out := &reduceOutcome{}
	var liveRuns int64
	for _, r := range runs {
		out.recordsIn += int64(len(r))
		if len(r) > 0 {
			liveRuns++
		}
	}
	o.reduceRecords.Add(out.recordsIn)
	o.mergedRuns.Add(liveRuns)
	var scratch []byte // per-task encode buffer, reused across emits
	emit := func(t tuple.Tuple) {
		if t, ok := chain.apply(t); ok {
			out.recordsOut++
			scratch = tuple.AppendEncoded(scratch[:0], t)
			out.outLines = append(out.outLines, string(scratch))
		}
	}
	keyCmp := func(a, b *interRec) int { return strings.Compare(a.keyStr, b.keyStr) }

	switch spec.Kind {
	case ReduceSort:
		var cmp func(a, b *interRec) int
		if len(spec.OrderBy) > 0 {
			cmp = func(a, b *interRec) int { return orderCmp(a.t, b.t, spec.OrderBy) }
		}
		mergeRuns(runs, cmp, func(r *interRec) { emit(r.t) })
	case ReduceDistinct:
		started := false
		var lastKey string
		mergeRuns(runs, keyCmp, func(r *interRec) {
			if started && r.keyStr == lastKey {
				return
			}
			started = true
			lastKey = r.keyStr
			emit(r.t) // first arrival of each key, keys sorted
		})
	case ReduceAggregate:
		aggIdx := aggOrdinals(spec.Gens)
		accs := make([]aggAcc, len(aggIdx))
		var curKey tuple.Tuple
		started := false
		var lastKey string
		flush := func() {
			row := make(tuple.Tuple, len(spec.Gens))
			ai := 0
			for i, gen := range spec.Gens {
				if gen.Agg == nil {
					row[i] = gen.Expr.Eval(curKey)
					continue
				}
				row[i] = finalizeAgg(gen.Agg, accs[ai])
				ai++
			}
			emit(row)
		}
		mergeRuns(runs, keyCmp, func(r *interRec) {
			if !started || r.keyStr != lastKey {
				if started {
					flush()
				}
				started = true
				lastKey = r.keyStr
				curKey = r.key
				for i := range accs {
					accs[i] = aggAcc{}
				}
			}
			for j, gi := range aggIdx {
				agg := spec.Gens[gi].Agg
				if spec.Combine {
					n, v := partialAcc(r.t, j)
					mergeAgg(agg, &accs[j], n, v)
				} else {
					mergeAgg(agg, &accs[j], 1, colOf(r.t, agg.ColIdx))
				}
			}
		})
		if started {
			flush()
		}
	case ReduceJoin:
		var left, right []tuple.Tuple
		started := false
		var lastKey string
		flush := func() {
			for _, lt := range left {
				for _, rt := range right {
					emit(tuple.Concat(lt, rt))
				}
			}
			left, right = left[:0], right[:0]
		}
		mergeRuns(runs, keyCmp, func(r *interRec) {
			if !started || r.keyStr != lastKey {
				if started {
					flush()
				}
				started = true
				lastKey = r.keyStr
			}
			// Merge order preserves arrival order within each side.
			if r.tag == 0 {
				left = append(left, r.t)
			} else {
				right = append(right, r.t)
			}
		})
		if started {
			flush()
		}
	default:
		return nil, fmt.Errorf("mapred: unknown reduce kind %v", spec.Kind)
	}
	out.digested = chain.digests
	o.outRecords.Add(out.recordsOut)
	return out, nil
}

// orderCmp compares two tuples under an ORDER BY key list, three-way.
func orderCmp(a, b tuple.Tuple, keys []pig.OrderKey) int {
	for _, k := range keys {
		var av, bv tuple.Value
		if k.Col < len(a) {
			av = a[k.Col]
		}
		if k.Col < len(b) {
			bv = b[k.Col]
		}
		c := tuple.Compare(av, bv)
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

func colOf(t tuple.Tuple, idx int) tuple.Value {
	if idx >= 0 && idx < len(t) {
		return t[idx]
	}
	return tuple.Null()
}

// auditMapSum digests a map task's full output for AuditTaskPoint: the
// shuffle partitions in partition order (key, separator, payload per
// record) plus any map-only output lines. Primary and quiz executions of
// the same task run the same code over the same spec, so equal work
// yields equal sums regardless of combiner settings.
func auditMapSum(out *mapOutcome) (digest.Sum, int64) {
	h := sha256.New()
	var n int64
	var buf []byte
	for _, part := range out.partitions {
		for i := range part {
			h.Write([]byte(part[i].keyStr))
			h.Write([]byte{0x1f, byte(part[i].tag + 1), 0x1f})
			buf = tuple.AppendEncoded(buf[:0], part[i].t)
			h.Write(buf)
			h.Write([]byte{'\n'})
			n++
		}
		h.Write([]byte{0x1e}) // partition boundary
	}
	for _, l := range out.outLines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
		n++
	}
	var s digest.Sum
	h.Sum(s[:0])
	return s, n
}

// auditReduceSum digests a reduce task's output lines for AuditTaskPoint.
func auditReduceSum(out *reduceOutcome) (digest.Sum, int64) {
	return digest.OfLines(out.outLines), int64(len(out.outLines))
}

// linesBytes sums serialized record sizes (records + newlines).
func linesBytes(lines []string) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	return n
}

// splitLines partitions a record count into deterministic contiguous
// splits of at most per records; n==0 yields one empty split so that
// empty inputs still produce a (digest-reporting) task.
func splitLines(n, per int) [][2]int {
	if per <= 0 {
		per = 10000
	}
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	var out [][2]int
	for start := 0; start < n; start += per {
		end := start + per
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// joinPartitionName keeps part-file names sortable and unique per task.
func partFileName(kind TaskKind, inputIdx, index int) string {
	if kind == MapTask {
		return fmt.Sprintf("part-m-%d-%05d", inputIdx, index)
	}
	return fmt.Sprintf("part-r-%05d", index)
}

// cleanPath normalizes a DFS path for prefix joins.
func joinPath(prefix, p string) string {
	if prefix == "" {
		return p
	}
	return strings.TrimSuffix(prefix, "/") + "/" + strings.TrimPrefix(p, "/")
}
