package analyze

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"clusterbft/internal/cluster"
)

// AuditKind classifies one step of the fault-isolation pipeline's
// reasoning: the evidence it saw and the conclusion it drew.
type AuditKind uint8

// Audit event kinds, in rough pipeline order.
const (
	// AuditMismatch: a replica's digests deviated from the f+1 majority
	// (or a job cluster returned a commission fault) — the raw evidence.
	AuditMismatch AuditKind = iota + 1
	// AuditNewDisjoint: the faulty set was disjoint from every current
	// suspicion set and became a new member of D (Fig 7 lines 4-5).
	AuditNewDisjoint
	// AuditRefine: the faulty set was a strict subset of a member of D;
	// the coarser set moved to the overlapping evidence and the new set
	// replaced it (Fig 7 lines 6-9).
	AuditRefine
	// AuditOverlap: the faulty set overlapped several suspicion sets and
	// was kept as overlapping evidence (Fig 7 line 11).
	AuditOverlap
	// AuditIntersect: stage 2 shrank a member of D to its intersection
	// with evidence touching only that member (Fig 7 lines 12-23).
	// Removed holds the exonerated nodes.
	AuditIntersect
	// AuditSaturated: |D| reached f; the suspect population stops
	// growing from this point (§6.3).
	AuditSaturated
	// AuditConviction: a member of D narrowed to exactly one node — the
	// analyzer has isolated a Byzantine node.
	AuditConviction
	// AuditScore: a node's suspicion level crossed into a different
	// category (none/low/med/high, §6.3).
	AuditScore
	// AuditEscalate: a sub-graph running a cheap verification policy
	// (quiz/deferred) produced fault evidence — quiz digest mismatch or
	// storage-boundary conflict — and was re-initiated at full
	// replication. The detail names the sub-graph and the evidence.
	AuditEscalate
)

// String names the kind for timelines.
func (k AuditKind) String() string {
	switch k {
	case AuditMismatch:
		return "mismatch"
	case AuditNewDisjoint:
		return "new-suspect-set"
	case AuditRefine:
		return "refine"
	case AuditOverlap:
		return "overlap"
	case AuditIntersect:
		return "intersect"
	case AuditSaturated:
		return "saturated"
	case AuditConviction:
		return "conviction"
	case AuditScore:
		return "score"
	case AuditEscalate:
		return "escalate"
	default:
		return "audit(?)"
	}
}

// AuditEvent is one recorded reasoning step with the evidence that
// caused it. T is a virtual timestamp from the clock the trail was
// built with (engine microseconds, or simulator ticks in faultsim).
type AuditEvent struct {
	T       int64
	Kind    AuditKind
	Nodes   []cluster.NodeID // the set concluded about (sorted)
	Removed []cluster.NodeID // exonerated nodes, for AuditIntersect
	Detail  string           // free-form evidence description
}

// String renders one timeline line: "t=... kind nodes [detail]".
func (e AuditEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-8d %-15s", e.T, e.Kind.String())
	if len(e.Nodes) > 0 {
		fmt.Fprintf(&b, " %v", e.Nodes)
	}
	if len(e.Removed) > 0 {
		fmt.Fprintf(&b, " exonerated=%v", e.Removed)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, "  (%s)", e.Detail)
	}
	return b.String()
}

// AuditTrail accumulates AuditEvents in the order the fault-isolation
// pipeline drew its conclusions. All methods are nil-safe no-ops on a
// nil receiver, so components hold a possibly-nil *AuditTrail and log
// unconditionally. The trail is bounded: beyond maxEvents the oldest
// events are dropped (counted), keeping long simulations from growing
// without bound.
type AuditTrail struct {
	mu      sync.Mutex
	clock   func() int64
	events  []AuditEvent
	max     int
	dropped int
}

// DefaultAuditCapacity bounds a trail built by NewAuditTrail.
const DefaultAuditCapacity = 1 << 16

// NewAuditTrail builds a trail stamping events with clock (nil clock
// stamps 0).
func NewAuditTrail(clock func() int64) *AuditTrail {
	return &AuditTrail{clock: clock, max: DefaultAuditCapacity}
}

// Add records one event, stamping T from the trail's clock.
func (a *AuditTrail) Add(kind AuditKind, nodes []cluster.NodeID, detail string) {
	a.add(AuditEvent{Kind: kind, Nodes: nodes, Detail: detail})
}

// AddRemoved records an intersection-style event carrying both the
// surviving and the exonerated nodes.
func (a *AuditTrail) AddRemoved(kind AuditKind, nodes, removed []cluster.NodeID, detail string) {
	a.add(AuditEvent{Kind: kind, Nodes: nodes, Removed: removed, Detail: detail})
}

func (a *AuditTrail) add(e AuditEvent) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.clock != nil {
		e.T = a.clock()
	}
	if a.max > 0 && len(a.events) >= a.max {
		drop := len(a.events) - a.max + 1
		a.events = a.events[:copy(a.events, a.events[drop:])]
		a.dropped += drop
	}
	a.events = append(a.events, e)
}

// Events returns a copy of the retained events, oldest first.
func (a *AuditTrail) Events() []AuditEvent {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditEvent, len(a.events))
	copy(out, a.events)
	return out
}

// Len returns the number of retained events.
func (a *AuditTrail) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.events)
}

// Dropped returns how many events were evicted by the capacity bound.
func (a *AuditTrail) Dropped() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Render formats the trail as a human-readable convergence timeline,
// one event per line, oldest first. max <= 0 renders everything;
// otherwise the most recent max events render, with an elision header
// counting what was cut.
func (a *AuditTrail) Render(max int) string {
	return RenderTimeline(a.Events(), max)
}

// RenderTimeline formats events as a convergence timeline (see
// AuditTrail.Render). It works on any event slice so callers can filter
// before rendering.
func RenderTimeline(events []AuditEvent, max int) string {
	var b strings.Builder
	if max > 0 && len(events) > max {
		fmt.Fprintf(&b, "... %d earlier events elided ...\n", len(events)-max)
		events = events[len(events)-max:]
	}
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedIDs copies and sorts node IDs for deterministic event payloads.
func SortedIDs(ids []cluster.NodeID) []cluster.NodeID {
	out := make([]cluster.NodeID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
