// Airline analysis under attack: the paper's §6.2 scenario. Runs the
// multi-store top-20-airports query while one worker node always corrupts
// its task output (a commission fault), and shows ClusterBFT verifying
// the result anyway, identifying the deviant replicas, and driving the
// faulty node's suspicion level up until it falls off the inclusion list.
//
//	go run ./examples/airline
package main

import (
	"fmt"
	"log"

	"clusterbft/internal/cluster"
	"clusterbft/internal/core"
	"clusterbft/internal/dfs"
	"clusterbft/internal/mapred"
	"clusterbft/internal/workload"
)

func main() {
	fs := dfs.New()
	fs.Append(workload.AirlinePath, workload.Airline(50_000, 0, 3)...)
	workers := cluster.New(24, 3)

	// node-005 lies on every task it runs.
	const evil = cluster.NodeID("node-005")
	if err := workers.SetAdversary(evil, cluster.FaultCommission, 1.0, 99); err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.SuspicionThreshold = 0.5 // evict once suspicion crosses 50%
	susp := core.NewSuspicionTable(cfg.SuspicionThreshold)
	eng := mapred.NewEngine(fs, workers, core.NewOverlapScheduler(susp), mapred.DefaultCostModel())
	ctrl := core.NewController(eng, cfg, susp, nil)

	// Suspicion persists across jobs: submit the analysis a few times,
	// as a stream of client requests would.
	for round := 1; round <= 3; round++ {
		res, err := ctrl.Run(workload.AirlineScript)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: verified=%v latency=%.2fs attempts=%d deviant-replicas=%d suspects=%v\n",
			round, res.Verified, float64(res.LatencyUs)/1e6, res.Attempts, res.FaultyReplicas, res.Suspects)
		fmt.Printf("         suspicion(%s)=%.2f category=%v excluded=%v\n",
			evil, susp.Level(evil), susp.CategoryOf(evil), susp.Excluded(evil))

		if round == 3 {
			top, err := fs.ReadTree(res.Outputs["out/airline/overall"])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("\nverified top airports (overall traffic):")
			for i, l := range top {
				if i >= 10 {
					break
				}
				fmt.Printf("  %2d. %s\n", i+1, l)
			}
		}
	}
}
