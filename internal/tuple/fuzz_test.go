package tuple

import (
	"strings"
	"testing"
)

// FuzzCodecRoundTrip drives the codec's fast and slow paths with
// arbitrary field content and checks the invariants the data plane
// depends on:
//
//  1. DecodeLine(EncodeLine(t)) == t under a string schema (string
//     typing sidesteps the documented int re-inference of TypeAny);
//  2. AppendCanonical emits exactly EncodeLine + '\n' (the digest byte
//     stream and the storage encoding cannot diverge);
//  3. EncodedLen matches len(EncodeLine(t)) (shuffle byte accounting);
//  4. AppendEncoded into a dirty, reused buffer appends exactly the
//     encoding (scratch-buffer reuse in the map/reduce hot path).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("a", "b", "c", uint8(3))
	f.Add("tab\there", "line\nbreak", `back\slash`, uint8(3))
	f.Add("", "", "", uint8(2))
	f.Add("-42", "3.5", "0", uint8(3))
	f.Add(`trailing\`, "\t\t", "\\n", uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c string, n uint8) {
		fields := []string{a, b, c}[:n%4]
		in := make(Tuple, len(fields))
		schema := &Schema{Fields: make([]Field, len(fields))}
		for i, s := range fields {
			in[i] = Str(s)
			schema.Fields[i] = Field{Name: "c", Type: TypeString}
		}
		line := EncodeLine(in)
		if len(in) == 0 || (len(in) == 1 && fields[0] == "") {
			// The empty tuple and the single-empty-field tuple share the
			// empty-line encoding (documented ambiguity); nothing more to
			// check.
			if line != "" {
				t.Fatalf("EncodeLine(%v) = %q, want empty", in, line)
			}
			return
		}
		if strings.Contains(line, "\n") {
			t.Fatalf("EncodeLine(%v) contains raw newline: %q", in, line)
		}
		out := DecodeLine(line, schema)
		if !EqualTuples(in, out) {
			t.Fatalf("round trip: DecodeLine(%q) = %v, want %v", line, out, in)
		}
		canon := AppendCanonical(nil, in)
		if string(canon) != line+"\n" {
			t.Fatalf("AppendCanonical = %q, EncodeLine+\\n = %q", canon, line+"\n")
		}
		if got := EncodedLen(in); got != len(line) {
			t.Fatalf("EncodedLen = %d, len(EncodeLine) = %d", got, len(line))
		}
		dirty := append(make([]byte, 0, 64), "dirty-prefix|"...)
		reused := AppendEncoded(dirty, in)
		if string(reused) != "dirty-prefix|"+line {
			t.Fatalf("AppendEncoded into dirty buffer = %q", reused)
		}
	})
}

// FuzzDecodeLineNoPanic feeds raw, possibly malformed lines (stray
// escapes, bare backslashes, embedded separators) through both decode
// paths: decoding must never panic and re-encoding a decoded tuple must
// be stable (encode∘decode is idempotent even for lines the encoder
// would never produce).
func FuzzDecodeLineNoPanic(f *testing.F) {
	f.Add("plain\tline")
	f.Add(`a\qb` + "\t" + `end\`)
	f.Add("\t\t\t")
	f.Add(`\t\n\\`)
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsRune(line, '\n') {
			t.Skip("raw newlines never reach DecodeLine (line-split input)")
		}
		got := DecodeLine(line, nil)
		re := EncodeLine(got)
		again := DecodeLine(re, nil)
		if !EqualTuples(got, again) && !(len(got) == 1 && got[0].Str() == "") {
			t.Fatalf("decode not idempotent: %q -> %v -> %q -> %v", line, got, re, again)
		}
	})
}
