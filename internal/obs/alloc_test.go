package obs

import "testing"

// Allocation pins for the disabled-observability contract: hot paths
// across the pipeline call these hooks unconditionally, relying on nil
// receivers (and enabled counters) costing zero allocations. The mapred
// and digest packages pin their own paths end to end; these pins
// localize a regression to the obs primitives themselves.

func TestNilCounterAddAllocs(t *testing.T) {
	var c *Counter
	if got := testing.AllocsPerRun(200, func() { c.Add(1); c.Inc() }); got != 0 {
		t.Errorf("nil Counter ops allocs = %v, want 0", got)
	}
}

func TestEnabledCounterAddAllocs(t *testing.T) {
	c := NewRegistry().Counter("hot")
	if got := testing.AllocsPerRun(200, func() { c.Add(1) }); got != 0 {
		t.Errorf("enabled Counter.Add allocs = %v, want 0", got)
	}
}

func TestEnabledHistogramObserveAllocs(t *testing.T) {
	h := NewRegistry().Histogram("lat", DurationBucketsUs)
	if got := testing.AllocsPerRun(200, func() { h.Observe(12345) }); got != 0 {
		t.Errorf("enabled Histogram.Observe allocs = %v, want 0", got)
	}
}

func TestNilTracerRecordAllocs(t *testing.T) {
	var tr *Tracer
	if got := testing.AllocsPerRun(200, func() {
		tr.Record("task", "node-0", "m0-000", 100, 200, A("job", "j"), A("kind", "map"))
	}); got != 0 {
		t.Errorf("nil Tracer.Record allocs = %v, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() { _ = tr.WallNow() }); got != 0 {
		t.Errorf("nil Tracer.WallNow allocs = %v, want 0", got)
	}
}
