package pig

import (
	"testing"
)

func lexTexts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lexAll(%q): %v", src, err)
	}
	out := make([]string, 0, len(toks)-1)
	for _, tok := range toks[:len(toks)-1] {
		out = append(out, tok.text)
	}
	return out
}

func TestLexBasicStatement(t *testing.T) {
	got := lexTexts(t, "a = LOAD 'in' AS (x:int);")
	want := []string{"a", "=", "LOAD", "in", "AS", "(", "x", ":", "int", ")", ";"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := lexTexts(t, "== != <= >= < > + - * / %")
	want := []string{"==", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll("42 3.5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNumber || toks[0].text != "42" {
		t.Errorf("int token: %+v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[1].text != "3.5" {
		t.Errorf("float token: %+v", toks[1])
	}
}

func TestLexNumberDotNotDecimal(t *testing.T) {
	// "1." followed by non-digit must not absorb the dot.
	toks, err := lexAll("b.col")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "b" || toks[1].text != "." || toks[2].text != "col" {
		t.Errorf("tokens: %v %v %v", toks[0], toks[1], toks[2])
	}
}

func TestLexQualifiedIdent(t *testing.T) {
	toks, err := lexAll("A::user")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "A::user" {
		t.Errorf("qualified ident lexed as %+v", toks[0])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lexAll(`'a\tb\nc\'d'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "a\tb\nc'd" {
		t.Errorf("string = %q", toks[0].text)
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := lexAll("'oops"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := lexAll("'oops\nmore'"); err == nil {
		t.Error("newline in string should fail")
	}
}

func TestLexLineComments(t *testing.T) {
	got := lexTexts(t, "a -- comment here\n= b;")
	want := []string{"a", "=", "b", ";"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestLexBlockComments(t *testing.T) {
	got := lexTexts(t, "a /* multi\nline */ = b;")
	if len(got) != 4 || got[0] != "a" || got[1] != "=" {
		t.Fatalf("tokens = %v", got)
	}
	toks, _ := lexAll("a /* multi\nline */ = b;")
	if toks[1].line != 2 {
		t.Errorf("line tracking through block comment: line = %d, want 2", toks[1].line)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := lexAll("a @ b"); err == nil {
		t.Error("lexer should reject '@'")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := lexAll("a\nb\n\nc")
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []int{1, 2, 4}
	for i, w := range wantLines {
		if toks[i].line != w {
			t.Errorf("token %d line = %d, want %d", i, toks[i].line, w)
		}
	}
}

func TestLexEOFStable(t *testing.T) {
	l := newLexer("")
	for i := 0; i < 3; i++ {
		tok, err := l.next()
		if err != nil || tok.kind != tokEOF {
			t.Fatalf("next() at EOF = %+v, %v", tok, err)
		}
	}
}

func TestTokenKindString(t *testing.T) {
	kinds := map[tokenKind]string{
		tokEOF:    "EOF",
		tokIdent:  "identifier",
		tokNumber: "number",
		tokString: "string",
		tokSymbol: "symbol",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
