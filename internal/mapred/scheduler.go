package mapred

import (
	"clusterbft/internal/cluster"
)

// Scheduler picks which legal task a node's free slot runs next. The
// engine has already enforced the safety constraint (no two replicas of
// one sub-graph on the same node, §5.3); schedulers express policy on the
// remaining candidates. Implementations correspond to Hadoop's pluggable
// TaskScheduler (§5.3).
type Scheduler interface {
	// Pick returns the task node should run next, or nil to leave the
	// slot idle this heartbeat. candidates is non-empty and ordered by
	// readiness (FIFO).
	Pick(node *cluster.Node, candidates []*Task) *Task
}

// FIFOScheduler runs the oldest ready task, like Hadoop's default
// JobQueueTaskScheduler.
type FIFOScheduler struct{}

// Pick returns the first candidate.
func (FIFOScheduler) Pick(_ *cluster.Node, candidates []*Task) *Task {
	return candidates[0]
}

// LocalityScheduler prefers tasks whose input split is hosted on the
// offering node, falling back to FIFO; used by the ablation benches to
// quantify the value of data-local execution (§4.2: "data local tasks
// enable faster execution").
type LocalityScheduler struct{}

// Pick prefers node-local splits.
func (LocalityScheduler) Pick(node *cluster.Node, candidates []*Task) *Task {
	for _, t := range candidates {
		if t.Home == node.ID {
			return t
		}
	}
	return candidates[0]
}
