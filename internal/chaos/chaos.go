// Package chaos is the deterministic, seed-driven fault-injection
// subsystem: it generates schedules of faults spanning every layer of
// the stack — node crash-stop and rejoin, task stragglers and hangs,
// commission-faulty task bodies, storage-boundary read/write corruption
// and truncation, and BFT message drop/duplication/reordering — and
// injects them through the nil-safe hooks the engine, DFS and BFT
// network expose. Everything is a pure function of the schedule seed and
// runs in virtual time, so a campaign of hundreds of schedules replays
// byte-identically at any worker-pool size (the Medusa-style
// fault-and-re-execute evaluation the ROADMAP's robustness lane calls
// for).
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"clusterbft/internal/cluster"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// CrashRejoin fail-stops the victim node at AtUs and rejoins it
	// DownUs later (engine slot accounting must survive both edges).
	CrashRejoin Kind = iota
	// Straggler multiplies the victim node's task durations by Slow.
	Straggler
	// HangTask makes the victim node withhold task results (omission)
	// with per-task probability Prob (per mille).
	HangTask
	// Commission makes the victim node tamper map inputs, with a
	// node-distinct corruption so two victims can never collude into an
	// accidental f+1 agreement.
	Commission
	// MangleRead flips a record in replica-local DFS reads (per-path
	// draw with probability Prob). Only paths whose producing job has
	// same-replica dependents are touched: those corruptions surface in
	// downstream digests, whereas tampering a verification-boundary
	// output after its digests were taken would model a broken trusted
	// store, which the paper rules out (§2.3).
	MangleRead
	// MangleWrite flips a record as it is written, under the same
	// same-replica-dependents rule.
	MangleWrite
	// TruncateWrite drops the tail record of a written stream, under the
	// same rule.
	TruncateWrite
	// NetDrop, NetDup and NetDelay perturb BFT messages touching the
	// victim replica index (Replica) with per-message probability Prob.
	// Schedule generation keeps net victims within the f bound.
	NetDrop
	NetDup
	NetDelay
)

var kindNames = map[Kind]string{
	CrashRejoin:   "crash",
	Straggler:     "straggler",
	HangTask:      "hang",
	Commission:    "commission",
	MangleRead:    "mangle-read",
	MangleWrite:   "mangle-write",
	TruncateWrite: "truncate-write",
	NetDrop:       "net-drop",
	NetDup:        "net-dup",
	NetDelay:      "net-delay",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one fault in a schedule. Which fields matter depends on Kind.
type Event struct {
	Kind    Kind
	Node    cluster.NodeID // victim node (node-scoped kinds)
	Replica int            // victim BFT replica index (net kinds)
	AtUs    int64          // crash instant
	DownUs  int64          // crash duration before rejoin
	Slow    float64        // straggler factor
	Prob    int            // per-mille probability for per-task/per-path/per-message draws
	Salt    uint64         // decorrelates this event's deterministic draws
}

func (e Event) String() string {
	switch e.Kind {
	case CrashRejoin:
		return fmt.Sprintf("%s(%s at=%dus down=%dus)", e.Kind, e.Node, e.AtUs, e.DownUs)
	case Straggler:
		return fmt.Sprintf("%s(%s x%.0f)", e.Kind, e.Node, e.Slow)
	case HangTask, Commission:
		return fmt.Sprintf("%s(%s p=%d‰)", e.Kind, e.Node, e.Prob)
	case NetDrop, NetDup, NetDelay:
		return fmt.Sprintf("%s(r%d p=%d‰)", e.Kind, e.Replica, e.Prob)
	default:
		return fmt.Sprintf("%s(p=%d‰)", e.Kind, e.Prob)
	}
}

// Schedule is a deterministic fault plan for one end-to-end run.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Victims returns the sorted set of nodes named by node-scoped events —
// the only nodes fault attribution may legitimately blame for digest
// deviations (storage-mangle blame is tracked per replica by the
// injector instead).
func (s *Schedule) Victims() []cluster.NodeID {
	set := map[cluster.NodeID]bool{}
	for _, e := range s.Events {
		switch e.Kind {
		case CrashRejoin, Straggler, HangTask, Commission:
			set[e.Node] = true
		}
	}
	out := make([]cluster.NodeID, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the schedule deterministically for reports.
func (s *Schedule) String() string {
	if len(s.Events) == 0 {
		return fmt.Sprintf("seed=%d <clean>", s.Seed)
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("seed=%d %s", s.Seed, strings.Join(parts, " "))
}

// Profile bounds schedule generation.
type Profile struct {
	// Nodes and F describe the target deployment: victims are drawn from
	// node-000..node-(Nodes-1), and net events target at most F distinct
	// replica indices of the 3F+1 BFT group.
	Nodes int
	F     int
	// MaxFaults caps events per schedule (at least 1 is drawn unless the
	// generator rolls a clean schedule).
	MaxFaults int
	// MaxVictims caps distinct victim nodes per schedule; 0 means F.
	// Keeping victims at or below the replication margin makes recovery
	// the common case; exhaustion remains a legitimate outcome.
	MaxVictims int
	// CrashWindowUs bounds crash instants; crashes rejoin within the
	// window too, so capacity is always restored by the drain.
	CrashWindowUs int64
}

// DefaultProfile matches the paper's common setup (f=1).
func DefaultProfile(nodes int) Profile {
	return Profile{Nodes: nodes, F: 1, MaxFaults: 3, CrashWindowUs: 120_000_000}
}

// Generate derives a schedule from seed alone: same seed, same profile —
// same schedule, independent of any runtime state.
func Generate(seed int64, p Profile) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed}
	if p.MaxFaults <= 0 {
		p.MaxFaults = 3
	}
	maxVictims := p.MaxVictims
	if maxVictims <= 0 {
		maxVictims = p.F
	}
	if rng.Intn(10) == 0 {
		return s // ~10% clean schedules keep the no-fault baseline honest
	}
	n := 1 + rng.Intn(p.MaxFaults)
	victims := map[cluster.NodeID]bool{}
	netVictims := map[int]bool{}
	// Integrity faults — commission corruption and storage mangling — are
	// the ones that make a replica's digests deviate. The verifier's
	// attribution guarantee only holds while at most f replicas of a job
	// deviate, so a schedule commits to ONE integrity source: either
	// commission events on a single victim node (a node serves at most
	// one replica per sub-graph attempt) or storage mangles on a single
	// victim replica index. Mixing the two — or spreading either across
	// victims — can put two deviant replicas in one job, and two replicas
	// faulty in unrelated ways still collide trivially (an empty chunk
	// digests identically no matter how it was emptied), forming an f+1
	// class with no honest member that the verifier has every right to
	// believe. Omission-family faults (crash, straggler, hang, net) never
	// alter digests and stay bounded only by the victim budgets.
	commissionVictim := cluster.NodeID("")
	storageVictim := -1
	kinds := []Kind{CrashRejoin, Straggler, HangTask, Commission, MangleRead, MangleWrite, TruncateWrite, NetDrop, NetDup, NetDelay}
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		ev := Event{Kind: k, Salt: rng.Uint64()}
		switch k {
		case CrashRejoin, Straggler, HangTask, Commission:
			node := cluster.NodeID(fmt.Sprintf("node-%03d", rng.Intn(p.Nodes)))
			if k == Commission {
				if storageVictim >= 0 {
					continue // storage already claimed the integrity budget
				}
				if commissionVictim == "" {
					commissionVictim = node
				}
				node = commissionVictim
			}
			if !victims[node] && len(victims) >= maxVictims {
				continue // victim budget spent; drop the event
			}
			victims[node] = true
			ev.Node = node
			switch k {
			case CrashRejoin:
				ev.AtUs = 1_000_000 + rng.Int63n(p.CrashWindowUs/2)
				ev.DownUs = 1_000_000 + rng.Int63n(p.CrashWindowUs/2)
			case Straggler:
				ev.Slow = float64(2 + rng.Intn(7))
			case HangTask:
				ev.Prob = 200 + rng.Intn(800)
			case Commission:
				ev.Prob = 500 + rng.Intn(500)
			}
		case NetDrop, NetDup, NetDelay:
			r := rng.Intn(3*p.F + 1)
			if !netVictims[r] && len(netVictims) >= p.F {
				continue // quorum bound: at most F perturbed replicas
			}
			netVictims[r] = true
			ev.Replica = r
			ev.Prob = 100 + rng.Intn(300)
		default:
			if commissionVictim != "" {
				continue // commission already claimed the integrity budget
			}
			if storageVictim < 0 {
				storageVictim = rng.Intn(2)
			}
			ev.Replica = storageVictim
			ev.Prob = 300 + rng.Intn(700)
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// det is the shared deterministic per-site draw: a pure hash of
// (salt, site) mapped onto [0, 1000). Used for per-task, per-path and
// per-message decisions so outcomes depend only on the schedule and the
// site's identity, never on arrival order or host scheduling.
func det(salt uint64, site string) int {
	return int(det64(salt, site) % 1000)
}

// det64 is the full-width draw behind det, exposed separately for uses
// that need a node-unique value rather than a probability (e.g. the
// commission-corruption delta, where two victim nodes colliding onto
// the same value would let their replicas corrupt byte-identically).
func det64(salt uint64, site string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(salt >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(site))
	return h.Sum64()
}
