package core

import (
	"reflect"
	"testing"

	"clusterbft/internal/digest"
	"clusterbft/internal/tuple"
)

func report(sid string, rep, point int, task string, chunk int, payload string) digest.Report {
	return digest.Report{
		Key:     digest.Key{SID: sid, Point: point, Task: task, Chunk: chunk},
		Replica: rep,
		Sum:     digest.Of([]tuple.Tuple{{tuple.Str(payload)}}),
	}
}

func TestAgreementUnanimous(t *testing.T) {
	m := NewMatcher(1)
	for rep := 0; rep < 4; rep++ {
		m.Add(report("s", rep, 1, "m0-000", 0, "same"))
		m.Add(report("s", rep, 2, "r000", 0, "also"))
	}
	maj, dev, ok := m.Agreement("s", []int{0, 1, 2, 3})
	if !ok {
		t.Fatal("unanimous replicas must agree")
	}
	if !reflect.DeepEqual(maj, []int{0, 1, 2, 3}) || len(dev) != 0 {
		t.Errorf("maj=%v dev=%v", maj, dev)
	}
}

func TestAgreementDeviantDetected(t *testing.T) {
	m := NewMatcher(1)
	for rep := 0; rep < 4; rep++ {
		payload := "good"
		if rep == 2 {
			payload = "evil"
		}
		m.Add(report("s", rep, 1, "m0-000", 0, payload))
	}
	maj, dev, ok := m.Agreement("s", []int{0, 1, 2, 3})
	if !ok {
		t.Fatal("3 of 4 should agree")
	}
	if !reflect.DeepEqual(maj, []int{0, 1, 3}) || !reflect.DeepEqual(dev, []int{2}) {
		t.Errorf("maj=%v dev=%v", maj, dev)
	}
}

func TestAgreementNoQuorum(t *testing.T) {
	m := NewMatcher(1)
	m.Add(report("s", 0, 1, "t", 0, "a"))
	m.Add(report("s", 1, 1, "t", 0, "b"))
	if _, _, ok := m.Agreement("s", []int{0, 1}); ok {
		t.Error("1-1 split with f=1 must not verify")
	}
}

func TestAgreementF0SingleExecution(t *testing.T) {
	m := NewMatcher(0)
	m.Add(report("s", 0, 1, "t", 0, "solo"))
	maj, _, ok := m.Agreement("s", []int{0})
	if !ok || len(maj) != 1 {
		t.Error("f=0 must accept a single replica")
	}
}

func TestAgreementMissingReportsDiffer(t *testing.T) {
	// A replica missing one digest has a different fingerprint.
	m := NewMatcher(1)
	for rep := 0; rep < 3; rep++ {
		m.Add(report("s", rep, 1, "t1", 0, "x"))
	}
	m.Add(report("s", 0, 1, "t2", 0, "y"))
	m.Add(report("s", 1, 1, "t2", 0, "y"))
	// replica 2 never reported t2
	maj, dev, ok := m.Agreement("s", []int{0, 1, 2})
	if !ok {
		t.Fatal("0 and 1 should agree")
	}
	if !reflect.DeepEqual(maj, []int{0, 1}) || !reflect.DeepEqual(dev, []int{2}) {
		t.Errorf("maj=%v dev=%v", maj, dev)
	}
}

func TestFingerprintOrderIndependence(t *testing.T) {
	m1 := NewMatcher(1)
	m1.Add(report("s", 0, 1, "a", 0, "p"))
	m1.Add(report("s", 0, 2, "b", 0, "q"))
	m2 := NewMatcher(1)
	m2.Add(report("s", 0, 2, "b", 0, "q"))
	m2.Add(report("s", 0, 1, "a", 0, "p"))
	if m1.Fingerprint("s", 0) != m2.Fingerprint("s", 0) {
		t.Error("fingerprint depends on arrival order")
	}
}

func TestFingerprintComparableAcrossSIDs(t *testing.T) {
	// Re-run attempts carry a new SID but identical digest vectors must
	// fingerprint equal so the controller can compare attempts.
	m := NewMatcher(1)
	m.Add(report("attempt0", 1, 1, "t", 0, "data"))
	m.Add(report("attempt1", 0, 1, "t", 0, "data"))
	if m.Fingerprint("attempt0", 1) != m.Fingerprint("attempt1", 0) {
		t.Error("fingerprints must compare across SIDs")
	}
}

func TestKeyDeviantsOnline(t *testing.T) {
	m := NewMatcher(1)
	// Chunk-level early detection: replica 3 deviates on one chunk while
	// replicas still run.
	for rep := 0; rep < 4; rep++ {
		payload := "ok"
		if rep == 3 {
			payload = "bad"
		}
		m.Add(report("s", rep, 1, "m0-000", 0, payload))
	}
	if got := m.KeyDeviants("s"); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("KeyDeviants = %v", got)
	}
}

func TestKeyDeviantsNoMajorityYet(t *testing.T) {
	m := NewMatcher(1)
	m.Add(report("s", 0, 1, "t", 0, "a"))
	m.Add(report("s", 1, 1, "t", 0, "b"))
	if got := m.KeyDeviants("s"); len(got) != 0 {
		t.Errorf("no f+1 majority yet, deviants = %v", got)
	}
}

func TestKeyDeviantsAmbiguousQuorum(t *testing.T) {
	// 2 vs 2 on one key with f=1: both sums reach f+1 votes, which is
	// impossible with at most f faulty replicas — the evidence is
	// unusable and nobody may be marked deviant. The pre-fix code picked
	// whichever class map iteration visited first and blamed the other
	// pair, so with two honest replicas and two replicas faulty in
	// unrelated ways (both emitting an empty chunk, which digests
	// identically), the honest pair was blamed half the time.
	m := NewMatcher(1)
	m.Add(report("s", 0, 1, "r001", 0, "honest"))
	m.Add(report("s", 3, 1, "r001", 0, "honest"))
	m.Add(report("s", 1, 1, "r001", 0, "empty"))
	m.Add(report("s", 2, 1, "r001", 0, "empty"))
	if got := m.KeyDeviants("s"); len(got) != 0 {
		t.Errorf("ambiguous 2v2 quorum produced deviants %v", got)
	}
	// An unambiguous key still convicts: all four agree except replica 2.
	for rep := 0; rep < 4; rep++ {
		payload := "ok"
		if rep == 2 {
			payload = "shifted"
		}
		m.Add(report("s", rep, 1, "r000", 0, payload))
	}
	if got := m.KeyDeviants("s"); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("KeyDeviants = %v, want [2]", got)
	}
}

func TestReportsAndForget(t *testing.T) {
	m := NewMatcher(1)
	m.Add(report("s", 0, 1, "t", 0, "x"))
	m.Add(report("s", 0, 1, "t", 1, "y"))
	if m.Reports("s", 0) != 2 {
		t.Errorf("Reports = %d", m.Reports("s", 0))
	}
	m.Forget("s")
	if m.Reports("s", 0) != 0 {
		t.Error("Forget did not clear state")
	}
}

func TestAgreementTieBreaksByLowestReplica(t *testing.T) {
	// 2 vs 2 with f=1: both groups have size 2 >= f+1; the group holding
	// the lowest replica index wins deterministically.
	m := NewMatcher(1)
	m.Add(report("s", 0, 1, "t", 0, "alpha"))
	m.Add(report("s", 3, 1, "t", 0, "alpha"))
	m.Add(report("s", 1, 1, "t", 0, "beta"))
	m.Add(report("s", 2, 1, "t", 0, "beta"))
	maj, _, ok := m.Agreement("s", []int{0, 1, 2, 3})
	if !ok {
		t.Fatal("size-2 group with f=1 verifies")
	}
	if maj[0] != 0 {
		t.Errorf("majority = %v, want the group containing replica 0", maj)
	}
}
