package core

import (
	"reflect"
	"testing"

	"clusterbft/internal/cluster"
)

func set(ns ...string) NodeSet { return NewNodeSet(ids(ns...)...) }

func TestNodeSetOps(t *testing.T) {
	a := set("x", "y", "z")
	b := set("y", "q")
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects failed")
	}
	inter := a.Intersect(b)
	if len(inter) != 1 || !inter["y"] {
		t.Errorf("Intersect = %v", inter)
	}
	if a.Intersects(set("nope")) {
		t.Error("disjoint sets must not intersect")
	}
	if !set("x").SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf failed")
	}
	c := a.Clone()
	delete(c, "x")
	if !a["x"] {
		t.Error("Clone aliases storage")
	}
	if got := set("b", "a").Sorted(); got[0] != "a" || got[1] != "b" {
		t.Errorf("Sorted = %v", got)
	}
}

func TestAnalyzerFirstReportDisjoint(t *testing.T) {
	fa := NewFaultAnalyzer(1)
	fa.Report(set("a", "b", "c"))
	if len(fa.Disjoint()) != 1 || len(fa.Overlapping()) != 0 {
		t.Fatalf("D=%v O=%v", fa.Disjoint(), fa.Overlapping())
	}
	if !fa.Saturated() {
		t.Error("f=1 with one disjoint set should saturate")
	}
	if fa.Reports() != 1 {
		t.Errorf("Reports = %d", fa.Reports())
	}
}

func TestAnalyzerSubsetRefines(t *testing.T) {
	fa := NewFaultAnalyzer(1)
	fa.Report(set("a", "b", "c", "d"))
	fa.Report(set("b", "c"))
	d := fa.Disjoint()
	if len(d) != 1 {
		t.Fatalf("D = %v", d)
	}
	if len(d[0]) != 2 || !d[0]["b"] || !d[0]["c"] {
		t.Errorf("refined set = %v", d[0].Sorted())
	}
	if len(fa.Overlapping()) != 1 {
		t.Errorf("O = %v", fa.Overlapping())
	}
}

func TestAnalyzerIntersectionNarrowsToFaultyNode(t *testing.T) {
	// Faulty node "m" appears in every faulty cluster; overlapping
	// evidence should shrink D to exactly {m}.
	fa := NewFaultAnalyzer(1)
	fa.Report(set("a", "b", "m"))
	fa.Report(set("c", "d", "m")) // overlaps only via m
	d := fa.Disjoint()
	if len(d) != 1 {
		t.Fatalf("D = %v", d)
	}
	if !reflect.DeepEqual(d[0].Sorted(), ids("m")) {
		t.Errorf("suspect set = %v, want [m]", d[0].Sorted())
	}
	if got := fa.Suspects(); len(got) != 1 || got[0] != "m" {
		t.Errorf("Suspects = %v", got)
	}
}

func TestAnalyzerTwoFaults(t *testing.T) {
	fa := NewFaultAnalyzer(2)
	fa.Report(set("a", "b", "m1"))
	if fa.Saturated() {
		t.Error("one set with f=2 should not saturate")
	}
	fa.Report(set("c", "d", "m2")) // disjoint -> second member of D
	if !fa.Saturated() {
		t.Fatal("two disjoint sets with f=2 should saturate")
	}
	// Evidence touching only the first member narrows it.
	fa.Report(set("e", "m1"))
	// Evidence touching only the second member narrows it.
	fa.Report(set("f", "m2"))
	suspects := fa.Suspects()
	if !reflect.DeepEqual(suspects, ids("m1", "m2")) {
		t.Errorf("Suspects = %v, want [m1 m2]", suspects)
	}
}

func TestAnalyzerAmbiguousEvidenceGoesToO(t *testing.T) {
	fa := NewFaultAnalyzer(2)
	fa.Report(set("a", "m1"))
	fa.Report(set("b", "m2"))
	// Touches both members of D: gives no narrowing on its own.
	fa.Report(set("m1", "m2", "z"))
	d := fa.Disjoint()
	if len(d) != 2 {
		t.Fatalf("D = %v", d)
	}
	if len(d[0])+len(d[1]) != 4 {
		t.Errorf("ambiguous evidence should not shrink D: %v %v", d[0].Sorted(), d[1].Sorted())
	}
	if len(fa.Overlapping()) != 1 {
		t.Errorf("O = %v", fa.Overlapping())
	}
}

func TestAnalyzerEmptySetIgnored(t *testing.T) {
	fa := NewFaultAnalyzer(1)
	fa.Report(NodeSet{})
	if fa.Reports() != 0 || len(fa.Disjoint()) != 0 {
		t.Error("empty set must be ignored")
	}
}

func TestAnalyzerReportClonesInput(t *testing.T) {
	fa := NewFaultAnalyzer(1)
	s := set("a", "b")
	fa.Report(s)
	s["c"] = true
	if fa.Disjoint()[0]["c"] {
		t.Error("analyzer aliases caller's set")
	}
}

func TestAnalyzerRetroactiveRefinement(t *testing.T) {
	// Ambiguous evidence received before saturation becomes useful once
	// |D| = f and refine re-runs over O.
	fa := NewFaultAnalyzer(1)
	fa.Report(set("a", "b", "m"))
	fa.Report(set("b", "m")) // subset: refines to {b, m}
	fa.Report(set("m", "q")) // touches only D[0]: narrows to {m}
	if got := fa.Suspects(); len(got) != 1 || got[0] != "m" {
		t.Errorf("Suspects = %v", got)
	}
}

func TestAnalyzerManyJobsConvergence(t *testing.T) {
	// Simulated stream: every faulty cluster contains node "evil" plus
	// rotating bystanders; convergence should reach exactly {evil}.
	fa := NewFaultAnalyzer(1)
	bystanders := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	for i := 0; i < 5; i++ {
		members := []cluster.NodeID{"evil",
			cluster.NodeID(bystanders[i%len(bystanders)]),
			cluster.NodeID(bystanders[(i+1)%len(bystanders)])}
		fa.Report(NewNodeSet(members...))
	}
	if got := fa.Suspects(); len(got) != 1 || got[0] != "evil" {
		t.Errorf("Suspects = %v, want [evil]", got)
	}
}
